//! Execution substrate for `graphblas-rs`.
//!
//! The GraphBLAS 2.0 specification (Brock et al., IPDPSW 2021) requires a
//! conformant implementation to be *thread safe* (§III) and introduces the
//! hierarchical *execution context* object `GrB_Context` (§IV). This crate
//! provides the machinery both of those features rest on:
//!
//! * [`pool`] — a persistent worker-thread pool with a scoped-spawn API, so
//!   kernels can parallelize over borrowed data without per-call thread
//!   spawns.
//! * [`par`] — data-parallel helpers (`parallel_for`, chunked map/reduce)
//!   that respect a context's thread budget.
//! * [`context`] — the [`Context`] object: hierarchical,
//!   carries the execution [`Mode`] (blocking/nonblocking)
//!   and a thread budget that is clamped by every ancestor, mirroring the
//!   paper's "number of threads … places … affinity" resource description.
//! * [`partition`] — range-splitting utilities, including nnz-balanced row
//!   partitioning for sparse kernels.
//! * [`workspace`] — per-thread, generation-stamped kernel scratch
//!   (dense accumulators, mark tables) checked out and returned instead of
//!   allocated per call, exploiting the §III completion latitude for
//!   iterative algorithms.
//! * [`sync`] / [`rng`] — std-only support shims (guard-returning locks and
//!   a seedable xoshiro256++ PRNG) used across the workspace, which builds
//!   offline with no external crates.
//!
//! The crate is deliberately independent of GraphBLAS object types so that
//! the storage substrate (`graphblas-sparse`) can also use it. Contexts and
//! the pool report into `graphblas-obs` when telemetry is enabled.

pub mod context;
pub mod par;
pub mod partition;
pub mod pool;
pub mod rng;
pub mod sync;
pub mod workspace;

pub use context::{init, is_initialized, finalize, global_context, Context, ContextOptions, Mode};
pub use par::{
    parallel_for, parallel_for_weighted, parallel_map_chunks, parallel_map_ranges,
    parallel_reduce,
};
pub use partition::{balanced_ranges, prefix_balanced_ranges};
pub use pool::{global_pool, Scope, ThreadPool};

/// Serializes tests that toggle the process-global telemetry flag.
#[cfg(test)]
pub(crate) fn obs_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
