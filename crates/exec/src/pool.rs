//! A persistent worker-thread pool with scoped task spawning.
//!
//! GraphBLAS kernels are short relative to thread-spawn cost, so a
//! conformant multithreaded implementation wants long-lived workers. The
//! pool here is intentionally small and auditable:
//!
//! * workers block on a hand-rolled MPMC queue (`Mutex<VecDeque>` +
//!   `Condvar` — the workspace builds offline with no external crates);
//! * [`ThreadPool::scope`] lets callers spawn closures that borrow stack
//!   data — the scope does not return until every spawned task has run, so
//!   the (single, documented) lifetime-erasing `unsafe` block is sound;
//! * panics inside tasks are captured and resumed on the scope owner's
//!   thread, so a panicking user-defined operator cannot kill a worker.
//!
//! Nested parallelism is handled by detecting re-entry: a task running *on*
//! a pool worker that opens another scope executes its sub-tasks inline
//! (see [`in_worker`]), which cannot deadlock.
//!
//! When telemetry is enabled (`graphblas-obs`), the pool counts task
//! spawns, inline executions, scope entries, and worker park/wake events,
//! and feeds the scheduler metrics of the live telemetry plane: queue
//! depth at every push, each task's queued-wait versus execution time,
//! and per-worker busy nanoseconds (the utilization signal `grbtop` and
//! the admission-control work consume).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::sync::{Condvar, Mutex, WaitGroup};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job plus the telemetry the scheduler metrics need: when it
/// was enqueued (`None` while telemetry is off, so the disabled path
/// never reads the clock).
struct QueuedJob {
    run: Job,
    enqueued_at: Option<Instant>,
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// The pool index of the current worker thread (`usize::MAX` off the
    /// pool); attributes task run time to a busy-table slot.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Returns `true` when the calling thread is one of a pool's workers.
///
/// Used to serialize nested parallel regions instead of deadlocking.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// The mutex-protected portion of the job queue. `parked` lives *inside*
/// the lock on purpose: it is read by `push` to decide whether a submission
/// counts as a wake, and written by `pop` around `Condvar::wait`. An
/// earlier revision kept it as a separate `AtomicUsize` touched with
/// `Ordering::Relaxed`; every access already happened under the mutex, so
/// the atomic bought nothing and invited exactly the unsynchronized
/// read-outside-the-lock drift that loses wakeups (the
/// `model_pool::buggy_unlocked_park_check_loses_wakeups` test in
/// `graphblas-check` demonstrates that failure mode on this protocol).
/// Folding it into the guarded state makes the synchronization structural.
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    closed: bool,
    /// Workers currently blocked in `available.wait` (so senders know
    /// whether a push actually wakes someone — the obs "wake" count).
    parked: usize,
}

/// MPMC job queue: every worker shares one deque behind a mutex. Jobs are
/// short-lived boxed closures; contention on the lock is dwarfed by the
/// kernels the jobs run. The park/wake protocol is model-checked in
/// `crates/check/tests/model_pool.rs`.
struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
                parked: 0,
            }),
            available: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let obs = graphblas_obs::enabled();
        let mut st = self.state.lock();
        if st.closed {
            return; // teardown in progress: drop the job
        }
        st.jobs.push_back(QueuedJob {
            run: job,
            enqueued_at: obs.then(Instant::now),
        });
        if obs {
            // The lock is held, so the depth is exact (not sampled) and
            // the high-water mark in the metrics is trustworthy.
            graphblas_obs::counters::record_pool_enqueue(st.jobs.len());
            if st.parked > 0 {
                // grblint: allow(relaxed-ordering); grbsa: protocol(counter) —
                // monotonic obs counter; no reader infers cross-thread state
                // from it.
                graphblas_obs::counters::pool()
                    .wakes
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(st);
        self.available.notify_one();
    }

    /// Blocks until a job is available or the queue is closed and empty.
    fn pop(&self) -> Option<QueuedJob> {
        let mut st = self.state.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                if graphblas_obs::enabled() {
                    graphblas_obs::counters::record_pool_dequeue();
                }
                return Some(job);
            }
            if st.closed {
                return None;
            }
            if graphblas_obs::enabled() {
                // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                graphblas_obs::counters::pool()
                    .parks
                    .fetch_add(1, Ordering::Relaxed);
            }
            st.parked += 1;
            st = self.available.wait(st);
            st.parked -= 1;
        }
    }

    fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.available.notify_all();
    }
}

/// A fixed-size pool of persistent worker threads.
pub struct ThreadPool {
    queue: Arc<JobQueue>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Creates a pool with `size` workers (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let queue = Arc::new(JobQueue::new());
        let workers = (0..size)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("grb-worker-{i}"))
                    .spawn(move || {
                        IN_WORKER.with(|w| w.set(true));
                        WORKER_INDEX.with(|w| w.set(i));
                        // Register with the obs timeline up front so the
                        // worker's tid and name appear in trace metadata
                        // even before its first recorded region.
                        graphblas_obs::timeline::register_thread();
                        while let Some(job) = queue.pop() {
                            match job.enqueued_at {
                                Some(enqueued) => {
                                    // The wait-vs-run split: time queued
                                    // (enqueue → here) against time on
                                    // the worker, attributed to slot `i`.
                                    let started = Instant::now();
                                    let wait = started.duration_since(enqueued);
                                    (job.run)();
                                    graphblas_obs::counters::record_pool_task(
                                        i,
                                        wait.as_nanos() as u64,
                                        started.elapsed().as_nanos() as u64,
                                    );
                                }
                                None => (job.run)(),
                            }
                        }
                    })
                    .expect("failed to spawn GraphBLAS worker thread")
            })
            .collect();
        ThreadPool {
            queue,
            workers,
            size,
        }
    }

    /// Number of worker threads in the pool.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submits a `'static` job; returns immediately. Jobs submitted during
    /// teardown are dropped.
    pub fn spawn_static(&self, job: Job) {
        self.queue.push(job);
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing the environment can
    /// be spawned. Returns only after every spawned task has finished.
    ///
    /// Panics raised by any task are re-raised here (first one wins).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env, '_>) -> R,
    {
        if graphblas_obs::enabled() {
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            graphblas_obs::counters::pool()
                .scopes
                .fetch_add(1, Ordering::Relaxed);
        }
        let state = Arc::new(ScopeState::default());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = f(&scope);
        state.wait();
        if let Some(payload) = state.take_panic() {
            std::panic::resume_unwind(payload);
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the queue lets workers drain remaining jobs and exit.
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Scope bookkeeping: a [`WaitGroup`] counts in-flight tasks (the protocol
/// is model-checked in `crates/check/tests/model_channels.rs`) and a slot
/// captures the first panic for re-raising on the scope owner's thread.
#[derive(Default)]
struct ScopeState {
    tasks: WaitGroup,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn task_started(&self) {
        self.tasks.add(1);
    }

    fn task_finished(&self) {
        self.tasks.done();
    }

    fn wait(&self) {
        self.tasks.wait();
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().take()
    }
}

/// A spawn handle tied to a [`ThreadPool::scope`] invocation.
///
/// Tasks may borrow from the enclosing environment (`'env`); the scope
/// guarantees they complete before `scope` returns.
pub struct Scope<'env, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env, 'pool> Scope<'env, 'pool> {
    /// Spawns `f` onto the pool. If called from within a pool worker the
    /// task runs inline, which keeps nested parallel regions deadlock-free.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if in_worker() {
            if graphblas_obs::enabled() {
                // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                graphblas_obs::counters::pool()
                    .tasks_inline
                    .fetch_add(1, Ordering::Relaxed);
            }
            f();
            return;
        }
        if graphblas_obs::enabled() {
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            graphblas_obs::counters::pool()
                .tasks_spawned
                .fetch_add(1, Ordering::Relaxed);
        }
        self.state.task_started();
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `ScopeState::wait` is called before `ThreadPool::scope`
        // returns, and `Scope` cannot escape the closure passed to `scope`
        // (its lifetime parameters are invariant), so every borrow captured
        // by `task` strictly outlives the task's execution. Erasing the
        // lifetime to satisfy the queue's `'static` bound is therefore
        // sound.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        self.pool.spawn_static(Box::new(move || {
            // Worker-side timeline region: makes every offloaded task
            // visible on its worker's track in GRB_TRACE output, even for
            // tasks whose kernel records no phases of its own.
            let ph = graphblas_obs::timeline::phase("pool.task");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            drop(ph);
            if let Err(payload) = outcome {
                state.record_panic(payload);
            }
            state.task_finished();
        }));
    }
}

static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();

/// Returns the process-wide pool, creating it on first use with one worker
/// per available hardware thread. The `GRB_POOL_THREADS` environment
/// variable overrides the autodetected size (useful where cgroup limits
/// under-report the machine, or to pin experiments to a fixed width).
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL_POOL.get_or_init(|| {
        let n = std::env::var("GRB_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        ThreadPool::new(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_can_borrow_stack_data() {
        let pool = ThreadPool::new(2);
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(16).collect();
        pool.scope(|s| {
            for chunk in chunks {
                s.spawn(move || {
                    for x in chunk.iter_mut() {
                        *x = 7;
                    }
                });
            }
        });
        assert!(data.iter().all(|&x| x == 7));
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn panic_in_task_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // Pool must still be usable afterwards.
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    // Runs on a worker; the inner scope must execute inline.
                    global_pool().scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_size_is_at_least_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = global_pool() as *const ThreadPool;
        let b = global_pool() as *const ThreadPool;
        assert_eq!(a, b);
    }

    #[test]
    fn pool_activity_is_counted_when_enabled() {
        let _g = crate::obs_test_guard();
        graphblas_obs::set_enabled(true);
        let before = graphblas_obs::snapshot().pool;
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| std::hint::black_box(()));
            }
        });
        let after = graphblas_obs::snapshot().pool;
        graphblas_obs::set_enabled(false);
        assert!(after.scopes > before.scopes);
        assert!(after.tasks_spawned >= before.tasks_spawned + 8);
    }

    #[test]
    fn scheduler_metrics_are_recorded_when_enabled() {
        let _g = crate::obs_test_guard();
        graphblas_obs::set_enabled(true);
        let before = graphblas_obs::snapshot().pool;
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| std::thread::sleep(std::time::Duration::from_micros(200)));
            }
        });
        let snap = graphblas_obs::snapshot();
        let after = snap.pool;
        graphblas_obs::set_enabled(false);
        assert!(after.jobs_queued >= before.jobs_queued + 16);
        assert!(after.jobs_dequeued >= before.jobs_dequeued + 16);
        assert!(after.tasks_completed >= before.tasks_completed + 16);
        assert!(after.task_run_ns > before.task_run_ns, "run time must accrue");
        assert!(after.queue_depth_max >= 1, "16 pushes must register depth");
        assert!(after.workers >= 1);
        assert!(
            snap.pool_workers.iter().sum::<u64>() > 0,
            "busy time must land in the worker table"
        );
    }

    #[test]
    fn scheduler_metrics_silent_when_disabled() {
        let _g = crate::obs_test_guard();
        graphblas_obs::set_enabled(false);
        let before = graphblas_obs::snapshot().pool;
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| std::hint::black_box(()));
            }
        });
        let after = graphblas_obs::snapshot().pool;
        assert_eq!(after.jobs_queued, before.jobs_queued);
        assert_eq!(after.tasks_completed, before.tasks_completed);
        assert_eq!(after.task_run_ns, before.task_run_ns);
    }
}
