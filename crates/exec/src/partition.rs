//! Work-partitioning utilities for parallel kernels.
//!
//! Sparse kernels are load-imbalanced if rows are split uniformly: a
//! power-law graph concentrates most of its nonzeros in a few rows. The
//! helpers here split either by count ([`balanced_ranges`]) or by a
//! monotone prefix/weight array ([`prefix_balanced_ranges`]), which kernels
//! use with a CSR `indptr` to give every task a near-equal share of
//! nonzeros.

use std::ops::Range;

/// Splits `0..n` into at most `k` contiguous ranges whose lengths differ by
/// at most one. Returns fewer than `k` ranges when `n < k`; returns an empty
/// vector when `n == 0`.
pub fn balanced_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits the item range `0..(prefix.len() - 1)` into at most `k` contiguous
/// ranges with approximately equal *weight*, where item `i` has weight
/// `prefix[i + 1] - prefix[i]` and `prefix` is non-decreasing (e.g. a CSR
/// `indptr` array: item = row, weight = nnz in row).
///
/// Ranges are never empty; heavy single items get a range of their own.
///
/// # Panics
/// Panics if `prefix` is empty.
pub fn prefix_balanced_ranges(prefix: &[usize], k: usize) -> Vec<Range<usize>> {
    assert!(!prefix.is_empty(), "prefix array must have at least one entry");
    let n = prefix.len() - 1;
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let total = prefix[n] - prefix[0];
    if total == 0 {
        return balanced_ranges(n, k);
    }
    let k = k.min(n);
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 0..k {
        if start >= n {
            break;
        }
        // Target cumulative weight at the end of chunk i (1-indexed).
        let target = prefix[0] + (total as u128 * (i as u128 + 1) / k as u128) as usize;
        // First index whose prefix value reaches the target.
        let mut end = partition_point(prefix, target);
        end = end.clamp(start + 1, n);
        // Leave at least one item per remaining chunk when possible.
        let remaining_chunks = k - i - 1;
        if n - end < remaining_chunks {
            end = n - remaining_chunks;
        }
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    if start < n {
        // Numerical slack: extend the last range.
        if let Some(last) = out.last_mut() {
            last.end = n;
        } else {
            out.push(0..n);
        }
    }
    out
}

/// Smallest `i` in `0..=prefix.len()-1` such that `prefix[i] >= target`,
/// clamped into item space.
fn partition_point(prefix: &[usize], target: usize) -> usize {
    match prefix.binary_search(&target) {
        Ok(mut i) => {
            // Land on the first occurrence so empty trailing rows are not
            // all absorbed into one chunk.
            while i > 0 && prefix[i - 1] == target {
                i -= 1;
            }
            i
        }
        Err(i) => i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(ranges: &[Range<usize>], n: usize) {
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next, "ranges must be contiguous");
            assert!(r.end > r.start, "ranges must be non-empty");
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover 0..n");
    }

    #[test]
    fn balanced_exact_division() {
        let r = balanced_ranges(12, 4);
        assert_eq!(r.len(), 4);
        cover(&r, 12);
        assert!(r.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn balanced_remainder_spread() {
        let r = balanced_ranges(10, 4);
        cover(&r, 10);
        let lens: Vec<_> = r.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn balanced_more_chunks_than_items() {
        let r = balanced_ranges(3, 8);
        assert_eq!(r.len(), 3);
        cover(&r, 3);
    }

    #[test]
    fn balanced_empty() {
        assert!(balanced_ranges(0, 4).is_empty());
        assert!(balanced_ranges(4, 0).is_empty());
    }

    #[test]
    fn prefix_balances_by_weight() {
        // One heavy row (100) then many light ones.
        let mut prefix = vec![0usize, 100];
        for i in 0..10 {
            prefix.push(100 + i + 1);
        }
        let ranges = prefix_balanced_ranges(&prefix, 2);
        cover(&ranges, 11);
        // The heavy row must be alone (or nearly) in the first chunk.
        assert_eq!(ranges[0], 0..1);
    }

    #[test]
    fn prefix_uniform_matches_balanced() {
        let prefix: Vec<usize> = (0..=20).map(|i| i * 3).collect();
        let ranges = prefix_balanced_ranges(&prefix, 4);
        cover(&ranges, 20);
        assert_eq!(ranges.len(), 4);
        for r in &ranges {
            assert_eq!(r.len(), 5);
        }
    }

    #[test]
    fn prefix_all_zero_weights() {
        let prefix = vec![0usize; 9]; // 8 items, no weight
        let ranges = prefix_balanced_ranges(&prefix, 3);
        cover(&ranges, 8);
    }

    #[test]
    fn prefix_single_item() {
        let ranges = prefix_balanced_ranges(&[0, 42], 4);
        assert_eq!(ranges, vec![0..1]);
    }

    #[test]
    fn prefix_empty_items() {
        assert!(prefix_balanced_ranges(&[0], 4).is_empty());
    }

    #[test]
    fn prefix_never_exceeds_k() {
        for n in 1..40 {
            for k in 1..10 {
                let prefix: Vec<usize> = (0..=n).map(|i| i * i).collect();
                let ranges = prefix_balanced_ranges(&prefix, k);
                assert!(ranges.len() <= k);
                cover(&ranges, n);
            }
        }
    }
}
