//! Per-thread, generation-stamped kernel workspaces.
//!
//! The hot kernels (`spgemm`'s sparse accumulator, `vxm`'s per-task dense
//! accumulator, `spmv`'s input densification table) all need O(n) scratch
//! that used to be `vec![...; n]`-allocated on every call — a 19-iteration
//! PageRank paid 19×k accumulator allocations. This module lets kernels
//! *check out* scratch from a per-thread cache and return it on drop, so an
//! iterative algorithm allocates its scratch once per worker thread.
//!
//! Correctness rests on generation stamping: a slot's contents are only
//! observable when its mark equals the workspace's current generation, and
//! every checkout (and every [`DenseAcc::begin_pass`]) bumps the
//! generation. Stale data from a previous kernel can therefore never leak
//! into a later one, and clearing stays O(touched), not O(n).
//!
//! Checkout *removes* the workspace from the thread's cache, so two
//! kernels interleaved on one thread get distinct workspaces — the second
//! checkout simply allocates fresh. Reuse statistics report into
//! `graphblas-obs` (`workspace.checkouts` / `hits` / `bytes_reused`) when
//! telemetry is enabled.
//!
//! Reuse can be disabled with `GRB_WORKSPACE=0` (kernels then allocate
//! fresh scratch per checkout, the pre-cache behavior) or overridden
//! programmatically via [`force_reuse`] — the ablation knob the bench
//! harness uses to measure the cache's payoff.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A scratch structure that can live in the per-thread cache.
pub trait Reusable: Sized + 'static {
    /// A zero-capacity instance (grown on first [`Reusable::prepare`]).
    fn fresh() -> Self;
    /// Sizes the workspace for a problem of size `n` and starts a new
    /// generation, invalidating all previously visible entries.
    fn prepare(&mut self, n: usize);
    /// Currently allocated buffer bytes (reuse accounting).
    fn reusable_bytes(&self) -> u64;
}

// Reuse-mode override: 0 = follow GRB_WORKSPACE, 1 = forced on, 2 = off.
//
// Atomics audit (grbsa): this is the crate's lone atomic and it is a
// `mode-flag` under the protocol table — an advisory toggle that guards
// no dependent data, flipped only at bench/test boundaries. Both sites
// use `SeqCst`, which is stronger than the protocol requires (the flag
// is cold: one load per checkout), so no protocol annotation is needed —
// only relaxed sites must declare their protocol.
static REUSE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_default() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("GRB_WORKSPACE").map_or(true, |v| v != "0"))
}

/// Whether checkouts may be served from (and returned to) the cache.
pub fn reuse_enabled() -> bool {
    match REUSE_OVERRIDE.load(Ordering::SeqCst) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Overrides the `GRB_WORKSPACE` setting (`None` restores it) — the
/// ablation hook for benches and tests.
pub fn force_reuse(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    REUSE_OVERRIDE.store(v, Ordering::SeqCst);
}

/// The per-thread cache. Each entry remembers the buffer bytes it
/// reported to the obs workspace memory gauge at insert time (0 when
/// telemetry was off), so removals subtract exactly what was added —
/// the gauge cannot drift across telemetry toggles.
#[derive(Default)]
struct ThreadCache {
    map: HashMap<TypeId, (Box<dyn Any>, u64)>,
    /// Monotonic checkout ordinal for this thread: decision events carry
    /// it so an explain log shows each checkout's position in the
    /// thread's reuse history.
    generation: u64,
}

impl ThreadCache {
    fn release_all(&mut self) {
        let recorded: u64 = self.map.values().map(|(_, b)| b).sum();
        graphblas_obs::mem::workspace().sub(recorded);
        if !self.map.is_empty() && graphblas_obs::events::on() {
            graphblas_obs::events::decision_workspace_trim(self.map.len() as u64, recorded);
        }
        self.map.clear();
    }
}

impl Drop for ThreadCache {
    fn drop(&mut self) {
        self.release_all();
    }
}

thread_local! {
    static CACHE: RefCell<ThreadCache> = RefCell::new(ThreadCache::default());
}

/// Drops every workspace cached by the current thread (test isolation).
pub fn clear_thread_cache() {
    CACHE.with(|c| c.borrow_mut().release_all());
}

/// RAII handle to a checked-out workspace; returns it to the thread's
/// cache on drop.
pub struct Checkout<T: Reusable> {
    inner: Option<T>,
}

impl<T: Reusable> Deref for Checkout<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("live checkout holds a workspace")
    }
}

impl<T: Reusable> DerefMut for Checkout<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("live checkout holds a workspace")
    }
}

impl<T: Reusable> Drop for Checkout<T> {
    fn drop(&mut self) {
        if let Some(ws) = self.inner.take() {
            if reuse_enabled() {
                let recorded = if graphblas_obs::enabled() {
                    let b = ws.reusable_bytes();
                    graphblas_obs::mem::workspace().add(b);
                    b
                } else {
                    0
                };
                CACHE.with(|c| {
                    let replaced = c
                        .borrow_mut()
                        .map
                        .insert(TypeId::of::<T>(), (Box::new(ws), recorded));
                    if let Some((_, old)) = replaced {
                        graphblas_obs::mem::workspace().sub(old);
                    }
                });
            }
        }
    }
}

/// Checks a workspace of type `T` out of the current thread's cache (or
/// allocates a fresh one), prepared for a problem of size `n`.
pub fn checkout<T: Reusable>(n: usize) -> Checkout<T> {
    let cached: Option<T> = if reuse_enabled() {
        CACHE
            .with(|c| c.borrow_mut().map.remove(&TypeId::of::<T>()))
            .and_then(|(b, recorded)| {
                graphblas_obs::mem::workspace().sub(recorded);
                b.downcast::<T>().ok()
            })
            .map(|b| *b)
    } else {
        None
    };
    let hit = cached.is_some();
    let mut ws = cached.unwrap_or_else(T::fresh);
    if graphblas_obs::enabled() {
        let reused = if hit { ws.reusable_bytes() } else { 0 };
        graphblas_obs::counters::record_workspace_checkout(hit, reused);
        if graphblas_obs::events::on() {
            let generation = CACHE.with(|c| {
                let mut c = c.borrow_mut();
                c.generation += 1;
                c.generation
            });
            graphblas_obs::events::decision_workspace(
                std::any::type_name::<T>(),
                hit,
                n as u64,
                reused,
                generation,
            );
        }
    }
    ws.prepare(n);
    Checkout { inner: Some(ws) }
}

/// Generation-stamped dense accumulator: the SPA of Gustavson-style
/// kernels. Entry `j` is visible iff `mark[j]` equals the current
/// generation; `touched` lists the visible slots in insertion order.
pub struct DenseAcc<Z: 'static> {
    mark: Vec<u32>,
    gen: u32,
    vals: Vec<Option<Z>>,
    touched: Vec<usize>,
}

impl<Z: 'static> DenseAcc<Z> {
    /// Starts a new accumulation pass: all entries become invisible, in
    /// O(1) (O(n) only once per 2^32 passes, at generation wraparound).
    pub fn begin_pass(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Wrapped: the stamp array is stale; reset it once per 2^32
            // passes so an ancient mark can never alias the new gen.
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.gen = 1;
        }
        self.touched.clear();
    }

    /// Inserts `v` at `j`, or combines it with the entry already visible
    /// there.
    pub fn upsert(&mut self, j: usize, v: Z, combine: impl FnOnce(Z, Z) -> Z) {
        if self.mark[j] == self.gen {
            let merged = match self.vals[j].take() {
                Some(cur) => combine(cur, v),
                None => v,
            };
            self.vals[j] = Some(merged);
        } else {
            self.mark[j] = self.gen;
            self.vals[j] = Some(v);
            self.touched.push(j);
        }
    }

    /// The entry visible at `j` this pass, if any.
    pub fn get(&self, j: usize) -> Option<&Z> {
        if self.mark[j] == self.gen {
            self.vals[j].as_ref()
        } else {
            None
        }
    }

    /// Number of slots touched this pass.
    pub fn touched_len(&self) -> usize {
        self.touched.len()
    }

    /// Sorts the touched list (for kernels emitting sorted output).
    pub fn sort_touched(&mut self) {
        self.touched.sort_unstable();
    }

    /// Moves every visible entry out, calling `f(j, v)` in touched order,
    /// and ends the pass. Pair with [`Self::sort_touched`] for sorted
    /// emission.
    pub fn drain_pass(&mut self, mut f: impl FnMut(usize, Z)) {
        let touched = std::mem::take(&mut self.touched);
        for &j in &touched {
            if let Some(v) = self.vals[j].take() {
                f(j, v);
            }
        }
        // Keep the allocation; begin_pass will clear it.
        self.touched = touched;
        self.touched.clear();
    }
}

impl<Z: 'static> Reusable for DenseAcc<Z> {
    fn fresh() -> Self {
        DenseAcc {
            mark: Vec::new(),
            gen: 0,
            vals: Vec::new(),
            touched: Vec::new(),
        }
    }

    fn prepare(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.vals.resize_with(n, || None);
        }
        self.begin_pass();
    }

    fn reusable_bytes(&self) -> u64 {
        (self.mark.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<Option<Z>>()
            + self.touched.capacity() * std::mem::size_of::<usize>()) as u64
    }
}

/// Generation-stamped index table: maps a column index to a position in
/// some external array (the `spmv` input-densification table, without the
/// borrowed references that would pin a lifetime).
pub struct MarkTable {
    mark: Vec<u32>,
    pos: Vec<usize>,
    gen: u32,
}

impl MarkTable {
    /// Records position `p` for index `j` in the current pass.
    pub fn set(&mut self, j: usize, p: usize) {
        self.mark[j] = self.gen;
        self.pos[j] = p;
    }

    /// The position recorded for `j` this pass, if any.
    #[inline]
    pub fn get(&self, j: usize) -> Option<usize> {
        if self.mark[j] == self.gen {
            Some(self.pos[j])
        } else {
            None
        }
    }
}

impl Reusable for MarkTable {
    fn fresh() -> Self {
        MarkTable {
            mark: Vec::new(),
            pos: Vec::new(),
            gen: 0,
        }
    }

    fn prepare(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.pos.resize(n, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.gen = 1;
        }
    }

    fn reusable_bytes(&self) -> u64 {
        (self.mark.capacity() * std::mem::size_of::<u32>()
            + self.pos.capacity() * std::mem::size_of::<usize>()) as u64
    }
}

/// Generation-stamped index set (the mask-allowed columns of masked
/// SpGEMM). Like [`MarkTable`] without the positions.
pub struct MarkSet {
    mark: Vec<u32>,
    gen: u32,
}

impl MarkSet {
    /// Starts a new pass: the set becomes empty in O(1).
    pub fn begin_pass(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.gen = 1;
        }
    }

    /// Adds `j` to the set for the current pass.
    pub fn insert(&mut self, j: usize) {
        self.mark[j] = self.gen;
    }

    /// Whether `j` is in the set this pass.
    #[inline]
    pub fn contains(&self, j: usize) -> bool {
        self.mark[j] == self.gen
    }
}

impl Reusable for MarkSet {
    fn fresh() -> Self {
        MarkSet {
            mark: Vec::new(),
            gen: 0,
        }
    }

    fn prepare(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.begin_pass();
    }

    fn reusable_bytes(&self) -> u64 {
        (self.mark.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

/// Word-packed bit set with a touched-word list: membership is one load
/// plus a mask, and clearing between passes costs O(words touched)
/// rather than O(n). Eight entries per byte — 32× denser than
/// [`MarkSet`]'s u32 generation stamps — so the mask-allowed column set
/// of masked SpGEMM stays cache-resident across the inner flop loop.
pub struct BitSet {
    words: Vec<u64>,
    touched: Vec<usize>,
}

impl BitSet {
    /// Starts a new pass: clears only the words the last pass touched.
    pub fn begin_pass(&mut self) {
        for &w in &self.touched {
            self.words[w] = 0;
        }
        self.touched.clear();
    }

    /// Adds `j` to the set for the current pass.
    #[inline]
    pub fn insert(&mut self, j: usize) {
        let w = j / 64;
        // `words[w] != 0` implies `w` is already on the touched list, so
        // `begin_pass` never misses a set bit.
        if self.words[w] == 0 {
            self.touched.push(w);
        }
        self.words[w] |= 1u64 << (j % 64);
    }

    /// Whether `j` is in the set this pass.
    #[inline]
    pub fn contains(&self, j: usize) -> bool {
        self.words[j / 64] & (1u64 << (j % 64)) != 0
    }
}

impl Reusable for BitSet {
    fn fresh() -> Self {
        BitSet {
            words: Vec::new(),
            touched: Vec::new(),
        }
    }

    fn prepare(&mut self, n: usize) {
        let nw = n.div_ceil(64);
        if self.words.len() < nw {
            self.words.resize(nw, 0);
        }
        self.begin_pass();
    }

    fn reusable_bytes(&self) -> u64 {
        (self.words.capacity() * std::mem::size_of::<u64>()
            + self.touched.capacity() * std::mem::size_of::<usize>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global reuse override or inspect
    /// the thread cache.
    fn serialize() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn checkout_reuses_and_restamps() {
        let _g = serialize();
        force_reuse(Some(true));
        clear_thread_cache();
        {
            let mut acc = checkout::<DenseAcc<u64>>(8);
            acc.upsert(2, 10, |a, b| a + b);
            acc.upsert(2, 5, |a, b| a + b);
            assert_eq!(acc.get(2), Some(&15));
            assert_eq!(acc.touched_len(), 1);
        }
        // Second checkout gets the cached workspace back, but the new
        // generation hides every entry from the previous kernel.
        {
            let acc = checkout::<DenseAcc<u64>>(8);
            assert_eq!(acc.get(2), None);
            assert_eq!(acc.touched_len(), 0);
        }
        force_reuse(None);
    }

    #[test]
    fn interleaved_checkouts_are_distinct() {
        let _g = serialize();
        force_reuse(Some(true));
        clear_thread_cache();
        // Two kernels interleaved on one thread: the second checkout
        // must not alias (or see the stamps of) the first.
        let mut a = checkout::<DenseAcc<u32>>(4);
        a.upsert(1, 100, |x, y| x + y);
        let mut b = checkout::<DenseAcc<u32>>(4);
        assert_eq!(b.get(1), None, "second kernel saw the first's stamps");
        b.upsert(1, 7, |x, y| x + y);
        b.upsert(3, 9, |x, y| x + y);
        assert_eq!(a.get(1), Some(&100), "first kernel's entry was clobbered");
        assert_eq!(a.get(3), None);
        let mut got_a = Vec::new();
        a.drain_pass(|j, v| got_a.push((j, v)));
        let mut got_b = Vec::new();
        b.sort_touched();
        b.drain_pass(|j, v| got_b.push((j, v)));
        assert_eq!(got_a, vec![(1, 100)]);
        assert_eq!(got_b, vec![(1, 7), (3, 9)]);
        force_reuse(None);
    }

    #[test]
    fn begin_pass_isolates_rows() {
        let _g = serialize();
        let mut acc = DenseAcc::<i64>::fresh();
        acc.prepare(6);
        acc.upsert(0, 1, |a, b| a + b);
        acc.upsert(5, 2, |a, b| a + b);
        let mut row0 = Vec::new();
        acc.drain_pass(|j, v| row0.push((j, v)));
        assert_eq!(row0, vec![(0, 1), (5, 2)]);
        acc.begin_pass();
        assert_eq!(acc.get(0), None);
        assert_eq!(acc.get(5), None);
        acc.upsert(5, 9, |a, b| a + b);
        assert_eq!(acc.get(5), Some(&9));
        assert_eq!(acc.touched_len(), 1);
    }

    #[test]
    fn mark_table_roundtrip_and_restamp() {
        let _g = serialize();
        let mut t = MarkTable::fresh();
        t.prepare(5);
        t.set(3, 42);
        assert_eq!(t.get(3), Some(42));
        assert_eq!(t.get(0), None);
        t.prepare(5);
        assert_eq!(t.get(3), None, "stale entry survived a new pass");
    }

    #[test]
    fn mark_set_membership() {
        let _g = serialize();
        let mut s = MarkSet::fresh();
        s.prepare(4);
        s.insert(2);
        assert!(s.contains(2));
        assert!(!s.contains(1));
        s.begin_pass();
        assert!(!s.contains(2));
    }

    #[test]
    fn bit_set_membership_and_touched_clear() {
        let _g = serialize();
        let mut s = BitSet::fresh();
        s.prepare(200);
        for &j in &[0usize, 63, 64, 65, 199] {
            s.insert(j);
            assert!(s.contains(j));
        }
        assert!(!s.contains(1));
        assert!(!s.contains(128));
        // Double insert must not duplicate the touched-word entry.
        s.insert(63);
        s.begin_pass();
        for &j in &[0usize, 63, 64, 65, 199] {
            assert!(!s.contains(j), "bit {j} survived a new pass");
        }
        // A fresh pass after growth still starts empty.
        s.insert(7);
        s.prepare(512);
        assert!(!s.contains(7));
        s.insert(511);
        assert!(s.contains(511));
    }

    #[test]
    fn prepare_grows_for_larger_problems() {
        let _g = serialize();
        force_reuse(Some(true));
        clear_thread_cache();
        {
            let mut acc = checkout::<DenseAcc<u8>>(4);
            acc.upsert(3, 1, |a, b| a + b);
        }
        {
            let mut acc = checkout::<DenseAcc<u8>>(16);
            acc.upsert(15, 2, |a, b| a + b);
            assert_eq!(acc.get(15), Some(&2));
            assert_eq!(acc.get(3), None);
        }
        force_reuse(None);
    }

    #[test]
    fn disabled_reuse_always_allocates_fresh() {
        let _g = serialize();
        force_reuse(Some(false));
        clear_thread_cache();
        {
            let mut acc = checkout::<DenseAcc<u16>>(4);
            acc.upsert(0, 3, |a, b| a + b);
        }
        // Nothing was returned to the cache.
        let cached = CACHE.with(|c| c.borrow().map.len());
        assert_eq!(cached, 0);
        force_reuse(None);
    }

    #[test]
    fn cached_bytes_report_to_mem_gauge() {
        let _g = serialize();
        let _obs = crate::obs_test_guard();
        force_reuse(Some(true));
        clear_thread_cache();
        graphblas_obs::set_enabled(true);
        let before = graphblas_obs::mem::workspace().live();
        {
            let _a = checkout::<DenseAcc<u64>>(64);
        }
        let parked = graphblas_obs::mem::workspace().live();
        assert!(parked > before, "returned workspace reported no bytes");
        // Checking it back out removes it from the cache — and its bytes
        // from the gauge.
        {
            let _a = checkout::<DenseAcc<u64>>(64);
            assert_eq!(graphblas_obs::mem::workspace().live(), before);
        }
        clear_thread_cache();
        assert_eq!(graphblas_obs::mem::workspace().live(), before);
        // Bytes recorded while enabled are released even if telemetry is
        // toggled off in between (per-entry recorded figure, not a guess).
        {
            let _a = checkout::<DenseAcc<u64>>(64);
        }
        graphblas_obs::set_enabled(false);
        clear_thread_cache();
        assert_eq!(graphblas_obs::mem::workspace().live(), before);
        force_reuse(None);
    }

    #[test]
    fn checkout_counters_report_hits() {
        let _g = serialize();
        let _obs = crate::obs_test_guard();
        force_reuse(Some(true));
        clear_thread_cache();
        graphblas_obs::set_enabled(true);
        let before = graphblas_obs::snapshot().workspace;
        {
            let _a = checkout::<DenseAcc<f64>>(32);
        }
        {
            let _b = checkout::<DenseAcc<f64>>(32);
        }
        let after = graphblas_obs::snapshot().workspace;
        graphblas_obs::set_enabled(false);
        assert_eq!(after.checkouts - before.checkouts, 2);
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.hits - before.hits, 1);
        assert!(after.bytes_reused > before.bytes_reused);
        force_reuse(None);
    }
}
