//! Synthetic graph generators.
//!
//! All generators are deterministic given a seed and return an
//! [`EdgeList`], which converts into GraphBLAS matrices through the public
//! `build` API (exercising the §IX optional-dup semantics: generators can
//! emit duplicate edges, resolved with a combiner).

use graphblas_core::{BinaryOp, GrbResult, Matrix};
use graphblas_exec::rng::StdRng;

/// A directed edge list over vertices `0..n`.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Number of vertices.
    pub n: usize,
    /// Source endpoint of each edge.
    pub src: Vec<usize>,
    /// Destination endpoint of each edge.
    pub dst: Vec<usize>,
}

impl EdgeList {
    /// Number of (possibly duplicate) edges.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the edge list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Adds the reverse of every edge (symmetrizes the graph).
    pub fn undirected(mut self) -> Self {
        let (s, d) = (self.src.clone(), self.dst.clone());
        self.src.extend(d);
        self.dst.extend(s);
        self
    }

    /// Drops self-loops.
    pub fn without_self_loops(mut self) -> Self {
        let keep: Vec<bool> = self
            .src
            .iter()
            .zip(&self.dst)
            .map(|(&s, &d)| s != d)
            .collect();
        let mut k = keep.iter();
        self.src.retain(|_| *k.next().unwrap());
        let mut k = keep.iter();
        self.dst.retain(|_| *k.next().unwrap());
        self
    }

    /// Boolean adjacency matrix; duplicate edges collapse through LOR.
    pub fn to_bool_matrix(&self) -> GrbResult<Matrix<bool>> {
        let a = Matrix::<bool>::new(self.n, self.n)?;
        a.build(
            &self.src,
            &self.dst,
            &vec![true; self.len()],
            Some(&BinaryOp::lor()),
        )?;
        Ok(a)
    }

    /// Weighted adjacency matrix with uniform weights in `(0, 1]`;
    /// duplicates keep the smaller weight.
    pub fn to_weighted_matrix(&self, seed: u64) -> GrbResult<Matrix<f64>> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let weights: Vec<f64> = (0..self.len()).map(|_| rng.gen_range(0.001..=1.0)).collect();
        let a = Matrix::<f64>::new(self.n, self.n)?;
        a.build(&self.src, &self.dst, &weights, Some(&BinaryOp::min()))?;
        Ok(a)
    }

    /// Multiplicity matrix: duplicate edges sum to their count.
    pub fn to_count_matrix(&self) -> GrbResult<Matrix<u64>> {
        let a = Matrix::<u64>::new(self.n, self.n)?;
        a.build(
            &self.src,
            &self.dst,
            &vec![1u64; self.len()],
            Some(&BinaryOp::plus()),
        )?;
        Ok(a)
    }
}

/// RMAT (Graph500-style) recursive power-law generator: `n = 2^scale`
/// vertices, `edge_factor · n` edges, partition probabilities
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> EdgeList {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut src = Vec::with_capacity(m);
    let mut dst = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut i, mut j) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            // Quadrant choice with slight per-level noise, per Graph500.
            if r < a {
                // top-left: nothing
            } else if r < a + b {
                j |= 1 << bit;
            } else if r < a + b + c {
                i |= 1 << bit;
            } else {
                i |= 1 << bit;
                j |= 1 << bit;
            }
        }
        src.push(i);
        dst.push(j);
    }
    EdgeList { n, src, dst }
}

/// Uniform random directed graph with exactly `m` (possibly duplicate)
/// edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = Vec::with_capacity(m);
    let mut dst = Vec::with_capacity(m);
    for _ in 0..m {
        src.push(rng.gen_range(0..n));
        dst.push(rng.gen_range(0..n));
    }
    EdgeList { n, src, dst }
}

/// Directed path `0 → 1 → … → n-1`.
pub fn path(n: usize) -> EdgeList {
    EdgeList {
        n,
        src: (0..n.saturating_sub(1)).collect(),
        dst: (1..n).collect(),
    }
}

/// Directed cycle over `n` vertices.
pub fn cycle(n: usize) -> EdgeList {
    EdgeList {
        n,
        src: (0..n).collect(),
        dst: (0..n).map(|i| (i + 1) % n).collect(),
    }
}

/// Undirected 2-D grid graph of `rows × cols` vertices (edges both ways).
pub fn grid(rows: usize, cols: usize) -> EdgeList {
    let n = rows * cols;
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                src.push(id(r, c));
                dst.push(id(r, c + 1));
            }
            if r + 1 < rows {
                src.push(id(r, c));
                dst.push(id(r + 1, c));
            }
        }
    }
    EdgeList { n, src, dst }.undirected()
}

/// Complete directed graph without self-loops.
pub fn complete(n: usize) -> EdgeList {
    let mut src = Vec::with_capacity(n * (n - 1));
    let mut dst = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                src.push(i);
                dst.push(j);
            }
        }
    }
    EdgeList { n, src, dst }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_shape_and_determinism() {
        let e1 = rmat(6, 8, 42);
        let e2 = rmat(6, 8, 42);
        assert_eq!(e1.n, 64);
        assert_eq!(e1.len(), 64 * 8);
        assert_eq!(e1.src, e2.src);
        assert_eq!(e1.dst, e2.dst);
        let e3 = rmat(6, 8, 43);
        assert_ne!(e1.src, e3.src);
        assert!(e1.src.iter().all(|&v| v < 64));
        assert!(e1.dst.iter().all(|&v| v < 64));
    }

    #[test]
    fn rmat_is_skewed() {
        // Power-law: max out-degree far exceeds the mean.
        let e = rmat(10, 16, 7);
        let mut deg = vec![0usize; e.n];
        for &s in &e.src {
            deg[s] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = e.len() / e.n;
        assert!(
            max > mean * 5,
            "expected a skewed degree distribution (max {max}, mean {mean})"
        );
    }

    #[test]
    fn generators_build_matrices() {
        let a = rmat(5, 4, 1).to_bool_matrix().unwrap();
        assert_eq!(a.nrows(), 32);
        assert!(a.nvals().unwrap() > 0);
        let w = erdos_renyi(40, 200, 2).to_weighted_matrix(3).unwrap();
        assert!(w.nvals().unwrap() > 0);
        let c = cycle(5).to_count_matrix().unwrap();
        assert_eq!(c.nvals().unwrap(), 5);
    }

    #[test]
    fn path_and_cycle_structure() {
        let p = path(4).to_bool_matrix().unwrap();
        assert_eq!(p.nvals().unwrap(), 3);
        assert_eq!(p.extract_element(0, 1).unwrap(), Some(true));
        assert_eq!(p.extract_element(3, 0).unwrap(), None);
        let c = cycle(4).to_bool_matrix().unwrap();
        assert_eq!(c.nvals().unwrap(), 4);
        assert_eq!(c.extract_element(3, 0).unwrap(), Some(true));
    }

    #[test]
    fn grid_degree_counts() {
        let g = grid(3, 3).to_bool_matrix().unwrap();
        // 3x3 grid: 12 undirected edges → 24 directed.
        assert_eq!(g.nvals().unwrap(), 24);
    }

    #[test]
    fn complete_graph() {
        let k = complete(5).to_bool_matrix().unwrap();
        assert_eq!(k.nvals().unwrap(), 20);
        assert_eq!(k.extract_element(2, 2).unwrap(), None);
    }

    #[test]
    fn undirected_and_loop_helpers() {
        let e = EdgeList {
            n: 3,
            src: vec![0, 1, 2],
            dst: vec![1, 1, 0],
        };
        let no_loops = e.clone().without_self_loops();
        assert_eq!(no_loops.len(), 2);
        let sym = no_loops.undirected();
        assert_eq!(sym.len(), 4);
    }
}
