//! Matrix Market exchange format.
//!
//! Supports the common subset used by graph repositories:
//! `matrix coordinate {real,integer,pattern} {general,symmetric}` and
//! `matrix array real general`. Symmetric coordinate files are expanded
//! to their full (both triangles) form on read.

use std::fmt;
use std::io::{BufRead, Write};

use graphblas_core::{BinaryOp, Format, GrbResult, Index, Matrix};

/// Parse/serialization failures for Matrix Market streams.
#[derive(Debug)]
pub enum MmError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// Malformed header or body, with a line number and description.
    Parse {
        /// 1-based line number of the offending line (0 if unknown).
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// Valid file, but a field combination we do not support.
    Unsupported(String),
    /// The parsed data failed GraphBLAS validation.
    GraphBlas(graphblas_core::Error),
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "matrix market I/O error: {e}"),
            MmError::Parse { line, detail } => {
                write!(f, "matrix market parse error at line {line}: {detail}")
            }
            MmError::Unsupported(what) => write!(f, "unsupported matrix market variant: {what}"),
            MmError::GraphBlas(e) => write!(f, "matrix market: {e}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

impl From<graphblas_core::Error> for MmError {
    fn from(e: graphblas_core::Error) -> Self {
        MmError::GraphBlas(e)
    }
}

fn parse_err(line: usize, detail: impl Into<String>) -> MmError {
    MmError::Parse {
        line,
        detail: detail.into(),
    }
}

/// Reads a Matrix Market stream into a `Matrix<f64>` (pattern entries
/// become `1.0`; integer entries are widened).
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Matrix<f64>, MmError> {
    let mut lines = reader.lines().enumerate();

    // Header.
    let (lineno, header) = loop {
        match lines.next() {
            Some((ln, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (ln + 1, line);
                }
            }
            None => return Err(parse_err(0, "empty stream")),
        }
    };
    let fields: Vec<String> = header.split_whitespace().map(|s| s.to_lowercase()).collect();
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(lineno, "expected '%%MatrixMarket matrix ...'"));
    }
    let layout = fields[2].as_str();
    let value_type = fields[3].as_str();
    let symmetry = fields.get(4).map(|s| s.as_str()).unwrap_or("general");
    if !matches!(value_type, "real" | "integer" | "pattern") {
        return Err(MmError::Unsupported(format!("value type '{value_type}'")));
    }
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(MmError::Unsupported(format!("symmetry '{symmetry}'")));
    }

    // Size line (skipping comments).
    let (size_ln, size_line) = loop {
        match lines.next() {
            Some((ln, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (ln + 1, line);
                }
            }
            None => return Err(parse_err(0, "missing size line")),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(size_ln, format!("bad size line: {e}")))?;

    match layout {
        "coordinate" => {
            if dims.len() != 3 {
                return Err(parse_err(size_ln, "coordinate size line needs 3 fields"));
            }
            let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
            let mut rows: Vec<Index> = Vec::with_capacity(nnz);
            let mut cols: Vec<Index> = Vec::with_capacity(nnz);
            let mut vals: Vec<f64> = Vec::with_capacity(nnz);
            let mut read = 0usize;
            for (ln, line) in lines {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                let mut it = t.split_whitespace();
                let i: usize = it
                    .next()
                    .ok_or_else(|| parse_err(ln + 1, "missing row"))?
                    .parse()
                    .map_err(|e| parse_err(ln + 1, format!("bad row index: {e}")))?;
                let j: usize = it
                    .next()
                    .ok_or_else(|| parse_err(ln + 1, "missing column"))?
                    .parse()
                    .map_err(|e| parse_err(ln + 1, format!("bad column index: {e}")))?;
                if i == 0 || j == 0 || i > nrows || j > ncols {
                    return Err(parse_err(ln + 1, "index out of bounds (1-based)"));
                }
                let v: f64 = if value_type == "pattern" {
                    1.0
                } else {
                    it.next()
                        .ok_or_else(|| parse_err(ln + 1, "missing value"))?
                        .parse()
                        .map_err(|e| parse_err(ln + 1, format!("bad value: {e}")))?
                };
                rows.push(i - 1);
                cols.push(j - 1);
                vals.push(v);
                if symmetry == "symmetric" && i != j {
                    rows.push(j - 1);
                    cols.push(i - 1);
                    vals.push(v);
                }
                read += 1;
            }
            if read != nnz {
                return Err(parse_err(
                    0,
                    format!("expected {nnz} entries, found {read}"),
                ));
            }
            let m = Matrix::<f64>::new(nrows.max(1), ncols.max(1))?;
            m.build(&rows, &cols, &vals, Some(&BinaryOp::second()))?;
            Ok(m)
        }
        "array" => {
            if dims.len() != 2 {
                return Err(parse_err(size_ln, "array size line needs 2 fields"));
            }
            if value_type == "pattern" {
                return Err(MmError::Unsupported("array pattern".into()));
            }
            if symmetry != "general" {
                return Err(MmError::Unsupported("array symmetric".into()));
            }
            let (nrows, ncols) = (dims[0], dims[1]);
            let mut values = Vec::with_capacity(nrows * ncols);
            for (ln, line) in lines {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                for tok in t.split_whitespace() {
                    values.push(
                        tok.parse::<f64>()
                            .map_err(|e| parse_err(ln + 1, format!("bad value: {e}")))?,
                    );
                }
            }
            if values.len() != nrows * ncols {
                return Err(parse_err(
                    0,
                    format!("expected {} values, found {}", nrows * ncols, values.len()),
                ));
            }
            // Matrix Market arrays are column-major.
            Ok(Matrix::<f64>::import(
                nrows.max(1),
                ncols.max(1),
                Format::DenseCol,
                None,
                None,
                values,
            )?)
        }
        other => Err(MmError::Unsupported(format!("layout '{other}'"))),
    }
}

/// Writes a matrix as `coordinate real general`.
pub fn write_matrix_market<W: Write>(writer: &mut W, m: &Matrix<f64>) -> Result<(), MmError> {
    let run = || -> GrbResult<(Vec<Index>, Vec<Index>, Vec<f64>)> { m.extract_tuples() };
    let (rows, cols, vals) = run()?;
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% generated by graphblas-rs")?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), vals.len())?;
    for ((i, j), v) in rows.iter().zip(&cols).zip(&vals) {
        writeln!(writer, "{} {} {}", i + 1, j + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn coordinate_roundtrip() {
        let src = Matrix::<f64>::new(3, 4).unwrap();
        src.build(&[0, 1, 2], &[3, 0, 2], &[1.5, -2.0, 3.25], None)
            .unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &src).unwrap();
        let back = read_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(back.extract_tuples().unwrap(), src.extract_tuples().unwrap());
    }

    #[test]
    fn pattern_and_comments() {
        let text = "\
%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 2
1 2
3 1
";
        let m = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.extract_element(0, 1).unwrap(), Some(1.0));
        assert_eq!(m.extract_element(2, 0).unwrap(), Some(1.0));
        assert_eq!(m.nvals().unwrap(), 2);
    }

    #[test]
    fn symmetric_expansion() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 5.0
2 1 7.0
";
        let m = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.extract_element(1, 0).unwrap(), Some(7.0));
        assert_eq!(m.extract_element(0, 1).unwrap(), Some(7.0));
        assert_eq!(m.extract_element(0, 0).unwrap(), Some(5.0));
        assert_eq!(m.nvals().unwrap(), 3);
    }

    #[test]
    fn array_format_is_column_major() {
        let text = "\
%%MatrixMarket matrix array real general
2 2
1.0
2.0
3.0
4.0
";
        let m = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.extract_element(0, 0).unwrap(), Some(1.0));
        assert_eq!(m.extract_element(1, 0).unwrap(), Some(2.0));
        assert_eq!(m.extract_element(0, 1).unwrap(), Some(3.0));
        assert_eq!(m.extract_element(1, 1).unwrap(), Some(4.0));
    }

    #[test]
    fn integer_values_widen() {
        let text = "\
%%MatrixMarket matrix coordinate integer general
1 1 1
1 1 42
";
        let m = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.extract_element(0, 0).unwrap(), Some(42.0));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(read_matrix_market(Cursor::new("")).is_err());
        assert!(read_matrix_market(Cursor::new("not a header\n1 1 0\n")).is_err());
        // Entry count mismatch.
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(short)).is_err());
        // Out-of-bounds 1-based index.
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(oob)).is_err());
        // Unsupported symmetry.
        let skew = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 0\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(skew)),
            Err(MmError::Unsupported(_))
        ));
    }
}
