//! Graph I/O and synthetic workload generation for `graphblas-rs`.
//!
//! The GraphBLAS 2.0 paper's ecosystem (SuiteSparse, LAGraph) evaluates on
//! real-world sparse matrices; this crate supplies the equivalents we can
//! generate or parse locally:
//!
//! * [`mm`] — Matrix Market exchange format (coordinate and array,
//!   general and symmetric), the lingua franca of the sparse-matrix world;
//! * [`gen`] — synthetic graph generators: RMAT/Graph500-style power-law
//!   graphs (the skewed degree distributions graph workloads stress),
//!   Erdős–Rényi uniform graphs, and regular structures (paths, cycles,
//!   grids, complete graphs) with known closed-form properties for
//!   validating algorithms.

pub mod gen;
pub mod mm;

pub use gen::{complete, cycle, erdos_renyi, grid, path, rmat, EdgeList};
pub use mm::{read_matrix_market, write_matrix_market, MmError};
