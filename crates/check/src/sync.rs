//! Schedule-instrumented synchronization primitives — the model-world
//! mirror of `graphblas_exec::sync`.
//!
//! Every type here exposes the same API shape as its `exec::sync`
//! counterpart (`Mutex` returns a guard from `lock()`, `Condvar::wait`
//! consumes and returns the guard, `Channel` / `WaitGroup` are line-for-
//! line re-implementations of the production algorithms), but every
//! acquire, wait, notify, and atomic access is a *yield point* of the
//! [`crate::sched`] scheduler. Running a protocol against these primitives
//! under [`crate::sched::explore`] therefore explores its sequentially-
//! consistent interleavings deterministically.
//!
//! **Keep `exec::sync` and this module in lockstep.** When a primitive
//! gains an operation in one place it must gain it in the other, and the
//! `Channel` / `WaitGroup` bodies must stay textually parallel to the
//! production ones so that model-checking them actually checks the shipped
//! algorithm. (The model checker cannot instrument `exec::sync` directly —
//! those primitives wrap `std::sync`, whose blocking the scheduler cannot
//! see — so fidelity is by construction, enforced by review and by this
//! comment on both sides.)
//!
//! Differences from real primitives, by design:
//!
//! * no spurious condvar wakeups (the model only wakes on notify), so a
//!   protocol that *requires* spurious-wakeup tolerance must be tested
//!   natively too;
//! * no poisoning — a model-thread panic aborts the whole schedule and is
//!   reported by the scheduler instead;
//! * atomic *interleavings* are sequentially consistent regardless of the
//!   requested ordering (the checker explores interleavings, not weak
//!   memory) — but the **happens-before edges** recorded for the
//!   vector-clock race detector honor the ordering the call site actually
//!   requested: a release-or-stronger store publishes the writer's clock,
//!   an acquire-or-stronger load joins it, and a relaxed access transfers
//!   nothing. [`RaceCell`] uses those clocks to flag unordered conflicting
//!   accesses to plain shared memory, so an "unsynchronized publish"
//!   protocol bug surfaces as a deterministic, seed-replayable data-race
//!   report even though every explored interleaving is SC.

use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::sched;

/// A mutual-exclusion lock whose acquire is a scheduling point and whose
/// contention is visible to the deadlock detector.
pub struct Mutex<T> {
    id: usize,
    /// Whether a model thread currently holds the lock.
    held: StdMutex<bool>,
    data: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; releasing wakes blocked acquirers.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new model mutex. `name` labels deadlock reports.
    pub fn new(value: T) -> Self {
        Mutex {
            id: sched::new_resource_id(),
            held: StdMutex::new(false),
            data: StdMutex::new(value),
        }
    }

    /// Names this mutex in deadlock reports.
    pub fn named(value: T, name: &str) -> Self {
        let m = Mutex::new(value);
        let (k, _) = sched::current();
        k.name_resource(m.id, name);
        m
    }

    /// Acquires the lock, blocking (in model time) while another thread
    /// holds it. A scheduling point.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (k, me) = sched::current();
        loop {
            k.yield_point(me);
            {
                let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
                if !*held {
                    *held = true;
                    break;
                }
            }
            k.block_on(me, self.id);
        }
        k.vc_acquire(me, self.id);
        MutexGuard {
            lock: self,
            inner: Some(self.data.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }

    /// Releases the lock and marks blocked acquirers runnable. NOT a
    /// scheduling point — release-then-block sequences (condvar wait) must
    /// be atomic in model time, exactly as `pthread_cond_wait` is.
    fn release(&self) {
        let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
        *held = false;
        drop(held);
        let (k, me) = sched::current();
        k.vc_release(me, self.id);
        k.wake_all_on(self.id);
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds data until drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds data until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.lock.release();
        }
    }
}

/// A condition variable over [`Mutex`]; `notify_one` picks its waiter with
/// the schedule's seeded PRNG, so *which* thread wins a wakeup is part of
/// the explored interleaving.
pub struct Condvar {
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            id: sched::new_resource_id(),
        }
    }

    /// Atomically (in model time) releases the guard's mutex and blocks
    /// until notified; reacquires before returning. Never wakes spuriously.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (k, me) = sched::current();
        let mutex = guard.lock;
        // Release without a scheduling point: nothing may interleave
        // between "release the mutex" and "become a waiter", or the model
        // itself would invent lost wakeups that real condvars exclude.
        drop(guard.inner.take());
        mutex.release();
        k.block_on(me, self.id);
        // Waking implies a notifier released its clock into this condvar;
        // join it so notify → wakeup is a happens-before edge.
        k.vc_acquire(me, self.id);
        mutex.lock()
    }

    /// Wakes one waiter (chosen by the schedule's PRNG); a no-op when no
    /// thread is waiting — which is exactly how wakeups get lost.
    pub fn notify_one(&self) {
        let (k, me) = sched::current();
        k.yield_point(me);
        k.vc_release(me, self.id);
        k.wake_one_on(self.id);
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        let (k, me) = sched::current();
        k.yield_point(me);
        k.vc_release(me, self.id);
        k.wake_all_on(self.id);
    }
}

// ---------------------------------------------------------------------------
// Model atomics
// ---------------------------------------------------------------------------

/// Whether `order` carries a release edge (publishes the writer's clock).
/// Spelled as a positive match so the weakest ordering's literal token
/// never appears in non-test code.
fn transfers_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Whether `order` carries an acquire edge (joins prior releasers' clocks).
fn transfers_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Model atomic; every access is a scheduling point. Interleavings are
/// sequentially consistent regardless of the requested `Ordering`, but the
/// happens-before edges recorded for [`RaceCell`] honor it: only
/// release-or-stronger writes publish, only acquire-or-stronger reads
/// observe. A relaxed publish therefore leaves the reader's clock behind
/// and any dependent plain access is reported as a data race.
pub struct AtomicUsize {
    id: usize,
    v: StdMutex<usize>,
}

impl AtomicUsize {
    pub fn new(v: usize) -> Self {
        AtomicUsize {
            id: sched::new_resource_id(),
            v: StdMutex::new(v),
        }
    }

    fn cell(&self) -> StdMutexGuard<'_, usize> {
        self.v.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn load(&self, order: Ordering) -> usize {
        let (k, me) = sched::current();
        k.yield_point(me);
        if transfers_acquire(order) {
            k.vc_acquire(me, self.id);
        }
        *self.cell()
    }

    pub fn store(&self, val: usize, order: Ordering) {
        let (k, me) = sched::current();
        k.yield_point(me);
        if transfers_release(order) {
            k.vc_release(me, self.id);
        }
        *self.cell() = val;
    }

    pub fn fetch_add(&self, val: usize, order: Ordering) -> usize {
        let (k, me) = sched::current();
        k.yield_point(me);
        if transfers_acquire(order) {
            k.vc_acquire(me, self.id);
        }
        if transfers_release(order) {
            k.vc_release(me, self.id);
        }
        let mut c = self.cell();
        let old = *c;
        *c = old.wrapping_add(val);
        old
    }

    pub fn fetch_sub(&self, val: usize, order: Ordering) -> usize {
        let (k, me) = sched::current();
        k.yield_point(me);
        if transfers_acquire(order) {
            k.vc_acquire(me, self.id);
        }
        if transfers_release(order) {
            k.vc_release(me, self.id);
        }
        let mut c = self.cell();
        let old = *c;
        *c = old.wrapping_sub(val);
        old
    }
}

/// Model boolean atomic (see [`AtomicUsize`] for the ordering contract).
pub struct AtomicBool {
    id: usize,
    v: StdMutex<bool>,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        AtomicBool {
            id: sched::new_resource_id(),
            v: StdMutex::new(v),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        let (k, me) = sched::current();
        k.yield_point(me);
        if transfers_acquire(order) {
            k.vc_acquire(me, self.id);
        }
        *self.v.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn store(&self, val: bool, order: Ordering) {
        let (k, me) = sched::current();
        k.yield_point(me);
        if transfers_release(order) {
            k.vc_release(me, self.id);
        }
        *self.v.lock().unwrap_or_else(|p| p.into_inner()) = val;
    }

    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        let (k, me) = sched::current();
        k.yield_point(me);
        if transfers_acquire(order) {
            k.vc_acquire(me, self.id);
        }
        if transfers_release(order) {
            k.vc_release(me, self.id);
        }
        let mut c = self.v.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::replace(&mut *c, val)
    }
}

// ---------------------------------------------------------------------------
// RaceCell — vector-clock data-race detection on plain shared memory
// ---------------------------------------------------------------------------

/// Epoch bookkeeping of one [`RaceCell`]: the last write and the reads
/// since it, each stamped `(thread, that thread's clock component)`.
struct RaceState<T> {
    value: T,
    /// Last write epoch, if any write happened yet.
    write: Option<(usize, u64)>,
    /// Read epochs since the last write; at most one entry per thread.
    reads: Vec<(usize, u64)>,
}

/// A plain (unlocked, non-atomic) shared-memory cell watched by the
/// vector-clock race detector.
///
/// Model a `T` that production code shares *without* synchronization — a
/// payload published through a flag, a field guarded "by convention" — as
/// a `RaceCell<T>`. Every [`read`](RaceCell::read) and
/// [`write`](RaceCell::write) is a scheduling point that is checked
/// against the schedule's happens-before relation ([FastTrack]-style
/// epochs over the kernel's vector clocks): two conflicting accesses with
/// no connecting fork/join/lock/acquire-release path fail the schedule
/// with a deterministic `data race` report, reproducible byte-for-byte by
/// replaying the seed.
///
/// The cell's own internal mutex only makes the *metadata* update atomic;
/// it deliberately creates no model-visible happens-before edge, so it
/// never masks the race it exists to detect.
///
/// [FastTrack]: https://doi.org/10.1145/1543135.1542490
pub struct RaceCell<T> {
    name: String,
    state: StdMutex<RaceState<T>>,
}

impl<T: Clone> RaceCell<T> {
    /// Creates a cell holding `value`; `name` labels race reports.
    pub fn new(value: T, name: &str) -> Self {
        RaceCell {
            name: name.to_string(),
            state: StdMutex::new(RaceState {
                value,
                write: None,
                reads: Vec::new(),
            }),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, RaceState<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Reads the value. Fails the schedule if the last write is not
    /// ordered before this read by happens-before.
    pub fn read(&self) -> T {
        let (k, me) = sched::current();
        k.yield_point(me);
        let mut st = self.lock_state();
        if let Some((w, when)) = st.write {
            if w != me && !k.vc_hb(me, w, when) {
                drop(st);
                k.detector_fail(format!(
                    "data race on `{}`: read by thread {me} is unordered \
                     with write by thread {w} (no happens-before edge)",
                    self.name
                ));
            }
        }
        let epoch = k.vc_epoch(me);
        match st.reads.iter_mut().find(|(t, _)| *t == me) {
            Some(r) => r.1 = epoch,
            None => st.reads.push((me, epoch)),
        }
        st.value.clone()
    }

    /// Writes the value. Fails the schedule if the last write, or any read
    /// since it, is not ordered before this write by happens-before.
    pub fn write(&self, value: T) {
        let (k, me) = sched::current();
        k.yield_point(me);
        let mut st = self.lock_state();
        if let Some((w, when)) = st.write {
            if w != me && !k.vc_hb(me, w, when) {
                drop(st);
                k.detector_fail(format!(
                    "data race on `{}`: write by thread {me} is unordered \
                     with write by thread {w} (no happens-before edge)",
                    self.name
                ));
            }
        }
        let racy_read = st
            .reads
            .iter()
            .copied()
            .find(|&(r, when)| r != me && !k.vc_hb(me, r, when));
        if let Some((r, _)) = racy_read {
            drop(st);
            k.detector_fail(format!(
                "data race on `{}`: write by thread {me} is unordered \
                 with read by thread {r} (no happens-before edge)",
                self.name
            ));
        }
        st.write = Some((me, k.vc_epoch(me)));
        st.reads.clear();
        st.value = value;
    }
}

// ---------------------------------------------------------------------------
// Channel — line-for-line mirror of `graphblas_exec::sync::Channel`
// ---------------------------------------------------------------------------

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Model mirror of `exec::sync::Channel`: an unbounded MPMC queue built
/// from one mutex and one condvar. The method bodies are kept textually
/// parallel to the production implementation so that model-checking this
/// type checks the shipped algorithm.
pub struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    available: Condvar,
}

impl<T> Channel<T> {
    pub fn new() -> Self {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item`; returns `false` (dropping the item) after close.
    pub fn send(&self, item: T) -> bool {
        {
            let mut st = self.state.lock();
            if st.closed {
                return false;
            }
            st.queue.push_back(item);
        }
        self.available.notify_one();
        true
    }

    /// Dequeues, blocking until an item arrives or the channel closes
    /// empty (`None`).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st);
        }
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self) -> Option<T> {
        self.state.lock().queue.pop_front()
    }

    /// Closes the channel and wakes every blocked receiver.
    pub fn close(&self) {
        {
            let mut st = self.state.lock();
            st.closed = true;
        }
        self.available.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.lock().queue.is_empty()
    }
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Channel::new()
    }
}

// ---------------------------------------------------------------------------
// WaitGroup — line-for-line mirror of `graphblas_exec::sync::WaitGroup`
// ---------------------------------------------------------------------------

/// Model mirror of `exec::sync::WaitGroup` (kept textually parallel — see
/// [`Channel`]): counts outstanding tasks; `wait` blocks until zero.
pub struct WaitGroup {
    count: Mutex<usize>,
    all_done: Condvar,
}

impl WaitGroup {
    pub fn new() -> Self {
        WaitGroup {
            count: Mutex::new(0),
            all_done: Condvar::new(),
        }
    }

    /// Registers `n` outstanding tasks.
    pub fn add(&self, n: usize) {
        let mut c = self.count.lock();
        *c += n;
    }

    /// Marks one task complete; wakes waiters when the count hits zero.
    pub fn done(&self) {
        let mut c = self.count.lock();
        match c.checked_sub(1) {
            Some(next) => *c = next,
            None => panic!("WaitGroup::done called more times than add"),
        }
        let zero = *c == 0;
        drop(c);
        if zero {
            self.all_done.notify_all();
        }
    }

    /// Blocks until the outstanding count is zero.
    pub fn wait(&self) {
        let mut c = self.count.lock();
        while *c != 0 {
            c = self.all_done.wait(c);
        }
    }

    /// Current outstanding count (racy by nature; for introspection).
    pub fn outstanding(&self) -> usize {
        *self.count.lock()
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        WaitGroup::new()
    }
}

// ---------------------------------------------------------------------------
// Model threads
// ---------------------------------------------------------------------------

/// Model-thread spawning, mirroring `std::thread` far enough for the
/// checked protocols.
pub mod thread {
    use std::sync::{Arc, Mutex as StdMutex};

    use crate::sched;

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        idx: usize,
        result: Arc<StdMutex<Option<T>>>,
    }

    /// Spawns `f` as a new model thread. The spawner yields immediately
    /// after, giving the scheduler the chance to run the child first.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (k, me) = sched::current();
        let result = Arc::new(StdMutex::new(None));
        let slot = result.clone();
        let idx = sched::spawn_model_thread(&k, format!("spawned-by-{me}"), move || {
            let out = f();
            *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
        });
        k.yield_point(me);
        JoinHandle { idx, result }
    }

    impl<T> JoinHandle<T> {
        /// Blocks (in model time) until the thread finishes; returns its
        /// result.
        pub fn join(self) -> T {
            let (k, me) = sched::current();
            // No scheduling point between the finished-check and the
            // block: we hold the token throughout, so the target cannot
            // finish in between (which would lose the wakeup).
            while !k.is_finished(self.idx) {
                k.block_on(me, sched::join_resource(self.idx));
            }
            // Everything the joined thread did happens-before this return.
            k.vc_join_with(me, self.idx);
            self.result
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .expect("joined model thread produced no result (it panicked)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore, replay, Config, Policy};
    use std::sync::Arc;

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let cfg = Config {
            schedules: 50,
            ..Config::default()
        };
        explore(&cfg, || {
            let m = Arc::new(Mutex::new(0u32));
            let mut hs = Vec::new();
            for _ in 0..3 {
                let m = m.clone();
                hs.push(thread::spawn(move || {
                    let mut g = m.lock();
                    let v = *g;
                    // A yield inside the critical section tempts the
                    // scheduler to interleave; mutual exclusion must hold.
                    let (k, me) = sched::current();
                    k.yield_point(me);
                    *g = v + 1;
                }));
            }
            for h in hs {
                h.join();
            }
            assert_eq!(*m.lock(), 3);
        })
        .unwrap();
    }

    #[test]
    fn channel_crosses_model_threads() {
        let cfg = Config {
            schedules: 50,
            ..Config::default()
        };
        explore(&cfg, || {
            let ch = Arc::new(Channel::new());
            let tx = ch.clone();
            let producer = thread::spawn(move || {
                for i in 0..3 {
                    assert!(tx.send(i));
                }
                tx.close();
            });
            let mut got = Vec::new();
            while let Some(v) = ch.recv() {
                got.push(v);
            }
            producer.join();
            assert_eq!(got, vec![0, 1, 2]);
        })
        .unwrap();
    }

    #[test]
    fn waitgroup_synchronizes() {
        let cfg = Config {
            schedules: 50,
            ..Config::default()
        };
        explore(&cfg, || {
            let wg = Arc::new(WaitGroup::new());
            let flag = Arc::new(AtomicBool::new(false));
            wg.add(1);
            let (wg2, flag2) = (wg.clone(), flag.clone());
            let h = thread::spawn(move || {
                flag2.store(true, Ordering::Release);
                wg2.done();
            });
            wg.wait();
            // wait() returning means done() ran, so the store is visible.
            assert!(flag.load(Ordering::Acquire));
            h.join();
        })
        .unwrap();
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        // Two threads each wait on a condvar nobody signals.
        let err = replay(11, Policy::RandomWalk, 5_000, || {
            let m = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let h = thread::spawn(move || {
                let g = m2.lock();
                let _g = cv2.wait(g);
            });
            let g = m.lock();
            let _g = cv.wait(g);
            h.join();
        })
        .unwrap_err();
        assert!(err.contains("deadlock"), "got: {err}");
    }

    #[test]
    fn racecell_unordered_writes_are_a_race() {
        let cfg = Config {
            schedules: 10,
            ..Config::default()
        };
        let failure = explore(&cfg, || {
            let c = Arc::new(RaceCell::new(0u32, "cell"));
            let c2 = c.clone();
            let h = thread::spawn(move || c2.write(1));
            c.write(2);
            h.join();
        })
        .unwrap_err();
        assert!(
            failure.message.contains("data race on `cell`"),
            "got: {}",
            failure.message
        );
    }

    #[test]
    fn racecell_mutex_ordered_accesses_do_not_race() {
        let cfg = Config {
            schedules: 100,
            ..Config::default()
        };
        explore(&cfg, || {
            let m = Arc::new(Mutex::new(()));
            let c = Arc::new(RaceCell::new(0u32, "guarded"));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let (m2, c2) = (m.clone(), c.clone());
                hs.push(thread::spawn(move || {
                    let _g = m2.lock();
                    let v = c2.read();
                    c2.write(v + 1);
                }));
            }
            for h in hs {
                h.join();
            }
            assert_eq!(c.read(), 2, "main is ordered after both via join");
        })
        .unwrap();
    }

    #[test]
    fn racecell_join_orders_child_accesses() {
        let cfg = Config {
            schedules: 50,
            ..Config::default()
        };
        explore(&cfg, || {
            let c = Arc::new(RaceCell::new(0u32, "joined"));
            let c2 = c.clone();
            let h = thread::spawn(move || c2.write(7));
            h.join();
            assert_eq!(c.read(), 7);
        })
        .unwrap();
    }

    #[test]
    fn release_acquire_publish_is_race_free() {
        let cfg = Config {
            schedules: 100,
            ..Config::default()
        };
        explore(&cfg, || {
            let data = Arc::new(RaceCell::new(0u32, "payload"));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                d2.write(42);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.read(), 42);
            }
            h.join();
        })
        .unwrap();
    }

    #[test]
    fn atomics_are_scheduling_points() {
        let cfg = Config {
            schedules: 30,
            ..Config::default()
        };
        explore(&cfg, || {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = a.clone();
            let h = thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            h.join();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        })
        .unwrap();
    }
}
