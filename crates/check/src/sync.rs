//! Schedule-instrumented synchronization primitives — the model-world
//! mirror of `graphblas_exec::sync`.
//!
//! Every type here exposes the same API shape as its `exec::sync`
//! counterpart (`Mutex` returns a guard from `lock()`, `Condvar::wait`
//! consumes and returns the guard, `Channel` / `WaitGroup` are line-for-
//! line re-implementations of the production algorithms), but every
//! acquire, wait, notify, and atomic access is a *yield point* of the
//! [`crate::sched`] scheduler. Running a protocol against these primitives
//! under [`crate::sched::explore`] therefore explores its sequentially-
//! consistent interleavings deterministically.
//!
//! **Keep `exec::sync` and this module in lockstep.** When a primitive
//! gains an operation in one place it must gain it in the other, and the
//! `Channel` / `WaitGroup` bodies must stay textually parallel to the
//! production ones so that model-checking them actually checks the shipped
//! algorithm. (The model checker cannot instrument `exec::sync` directly —
//! those primitives wrap `std::sync`, whose blocking the scheduler cannot
//! see — so fidelity is by construction, enforced by review and by this
//! comment on both sides.)
//!
//! Differences from real primitives, by design:
//!
//! * no spurious condvar wakeups (the model only wakes on notify), so a
//!   protocol that *requires* spurious-wakeup tolerance must be tested
//!   natively too;
//! * no poisoning — a model-thread panic aborts the whole schedule and is
//!   reported by the scheduler instead;
//! * atomics are sequentially consistent regardless of the requested
//!   ordering (the checker explores interleavings, not weak memory).

use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::sched;

/// A mutual-exclusion lock whose acquire is a scheduling point and whose
/// contention is visible to the deadlock detector.
pub struct Mutex<T> {
    id: usize,
    /// Whether a model thread currently holds the lock.
    held: StdMutex<bool>,
    data: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; releasing wakes blocked acquirers.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new model mutex. `name` labels deadlock reports.
    pub fn new(value: T) -> Self {
        Mutex {
            id: sched::new_resource_id(),
            held: StdMutex::new(false),
            data: StdMutex::new(value),
        }
    }

    /// Names this mutex in deadlock reports.
    pub fn named(value: T, name: &str) -> Self {
        let m = Mutex::new(value);
        let (k, _) = sched::current();
        k.name_resource(m.id, name);
        m
    }

    /// Acquires the lock, blocking (in model time) while another thread
    /// holds it. A scheduling point.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (k, me) = sched::current();
        loop {
            k.yield_point(me);
            {
                let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
                if !*held {
                    *held = true;
                    break;
                }
            }
            k.block_on(me, self.id);
        }
        MutexGuard {
            lock: self,
            inner: Some(self.data.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }

    /// Releases the lock and marks blocked acquirers runnable. NOT a
    /// scheduling point — release-then-block sequences (condvar wait) must
    /// be atomic in model time, exactly as `pthread_cond_wait` is.
    fn release(&self) {
        let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
        *held = false;
        drop(held);
        let (k, _) = sched::current();
        k.wake_all_on(self.id);
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds data until drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds data until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.lock.release();
        }
    }
}

/// A condition variable over [`Mutex`]; `notify_one` picks its waiter with
/// the schedule's seeded PRNG, so *which* thread wins a wakeup is part of
/// the explored interleaving.
pub struct Condvar {
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            id: sched::new_resource_id(),
        }
    }

    /// Atomically (in model time) releases the guard's mutex and blocks
    /// until notified; reacquires before returning. Never wakes spuriously.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (k, me) = sched::current();
        let mutex = guard.lock;
        // Release without a scheduling point: nothing may interleave
        // between "release the mutex" and "become a waiter", or the model
        // itself would invent lost wakeups that real condvars exclude.
        drop(guard.inner.take());
        mutex.release();
        k.block_on(me, self.id);
        mutex.lock()
    }

    /// Wakes one waiter (chosen by the schedule's PRNG); a no-op when no
    /// thread is waiting — which is exactly how wakeups get lost.
    pub fn notify_one(&self) {
        let (k, me) = sched::current();
        k.yield_point(me);
        k.wake_one_on(self.id);
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        let (k, me) = sched::current();
        k.yield_point(me);
        k.wake_all_on(self.id);
    }
}

// ---------------------------------------------------------------------------
// Model atomics
// ---------------------------------------------------------------------------

/// Sequentially-consistent model atomic; every access is a scheduling
/// point. The `Ordering` argument is accepted for API parity and ignored —
/// the checker explores interleavings, not weak memory.
pub struct AtomicUsize {
    v: StdMutex<usize>,
}

impl AtomicUsize {
    pub fn new(v: usize) -> Self {
        AtomicUsize { v: StdMutex::new(v) }
    }

    fn cell(&self) -> StdMutexGuard<'_, usize> {
        self.v.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn load(&self, _order: Ordering) -> usize {
        let (k, me) = sched::current();
        k.yield_point(me);
        *self.cell()
    }

    pub fn store(&self, val: usize, _order: Ordering) {
        let (k, me) = sched::current();
        k.yield_point(me);
        *self.cell() = val;
    }

    pub fn fetch_add(&self, val: usize, _order: Ordering) -> usize {
        let (k, me) = sched::current();
        k.yield_point(me);
        let mut c = self.cell();
        let old = *c;
        *c = old.wrapping_add(val);
        old
    }

    pub fn fetch_sub(&self, val: usize, _order: Ordering) -> usize {
        let (k, me) = sched::current();
        k.yield_point(me);
        let mut c = self.cell();
        let old = *c;
        *c = old.wrapping_sub(val);
        old
    }
}

/// Sequentially-consistent model boolean atomic (see [`AtomicUsize`]).
pub struct AtomicBool {
    v: StdMutex<bool>,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        AtomicBool { v: StdMutex::new(v) }
    }

    pub fn load(&self, _order: Ordering) -> bool {
        let (k, me) = sched::current();
        k.yield_point(me);
        *self.v.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn store(&self, val: bool, _order: Ordering) {
        let (k, me) = sched::current();
        k.yield_point(me);
        *self.v.lock().unwrap_or_else(|p| p.into_inner()) = val;
    }

    pub fn swap(&self, val: bool, _order: Ordering) -> bool {
        let (k, me) = sched::current();
        k.yield_point(me);
        let mut c = self.v.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::replace(&mut *c, val)
    }
}

// ---------------------------------------------------------------------------
// Channel — line-for-line mirror of `graphblas_exec::sync::Channel`
// ---------------------------------------------------------------------------

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Model mirror of `exec::sync::Channel`: an unbounded MPMC queue built
/// from one mutex and one condvar. The method bodies are kept textually
/// parallel to the production implementation so that model-checking this
/// type checks the shipped algorithm.
pub struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    available: Condvar,
}

impl<T> Channel<T> {
    pub fn new() -> Self {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item`; returns `false` (dropping the item) after close.
    pub fn send(&self, item: T) -> bool {
        {
            let mut st = self.state.lock();
            if st.closed {
                return false;
            }
            st.queue.push_back(item);
        }
        self.available.notify_one();
        true
    }

    /// Dequeues, blocking until an item arrives or the channel closes
    /// empty (`None`).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st);
        }
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self) -> Option<T> {
        self.state.lock().queue.pop_front()
    }

    /// Closes the channel and wakes every blocked receiver.
    pub fn close(&self) {
        {
            let mut st = self.state.lock();
            st.closed = true;
        }
        self.available.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.lock().queue.is_empty()
    }
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Channel::new()
    }
}

// ---------------------------------------------------------------------------
// WaitGroup — line-for-line mirror of `graphblas_exec::sync::WaitGroup`
// ---------------------------------------------------------------------------

/// Model mirror of `exec::sync::WaitGroup` (kept textually parallel — see
/// [`Channel`]): counts outstanding tasks; `wait` blocks until zero.
pub struct WaitGroup {
    count: Mutex<usize>,
    all_done: Condvar,
}

impl WaitGroup {
    pub fn new() -> Self {
        WaitGroup {
            count: Mutex::new(0),
            all_done: Condvar::new(),
        }
    }

    /// Registers `n` outstanding tasks.
    pub fn add(&self, n: usize) {
        let mut c = self.count.lock();
        *c += n;
    }

    /// Marks one task complete; wakes waiters when the count hits zero.
    pub fn done(&self) {
        let mut c = self.count.lock();
        match c.checked_sub(1) {
            Some(next) => *c = next,
            None => panic!("WaitGroup::done called more times than add"),
        }
        let zero = *c == 0;
        drop(c);
        if zero {
            self.all_done.notify_all();
        }
    }

    /// Blocks until the outstanding count is zero.
    pub fn wait(&self) {
        let mut c = self.count.lock();
        while *c != 0 {
            c = self.all_done.wait(c);
        }
    }

    /// Current outstanding count (racy by nature; for introspection).
    pub fn outstanding(&self) -> usize {
        *self.count.lock()
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        WaitGroup::new()
    }
}

// ---------------------------------------------------------------------------
// Model threads
// ---------------------------------------------------------------------------

/// Model-thread spawning, mirroring `std::thread` far enough for the
/// checked protocols.
pub mod thread {
    use std::sync::{Arc, Mutex as StdMutex};

    use crate::sched;

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        idx: usize,
        result: Arc<StdMutex<Option<T>>>,
    }

    /// Spawns `f` as a new model thread. The spawner yields immediately
    /// after, giving the scheduler the chance to run the child first.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (k, me) = sched::current();
        let result = Arc::new(StdMutex::new(None));
        let slot = result.clone();
        let idx = sched::spawn_model_thread(&k, format!("spawned-by-{me}"), move || {
            let out = f();
            *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
        });
        k.yield_point(me);
        JoinHandle { idx, result }
    }

    impl<T> JoinHandle<T> {
        /// Blocks (in model time) until the thread finishes; returns its
        /// result.
        pub fn join(self) -> T {
            let (k, me) = sched::current();
            // No scheduling point between the finished-check and the
            // block: we hold the token throughout, so the target cannot
            // finish in between (which would lose the wakeup).
            while !k.is_finished(self.idx) {
                k.block_on(me, sched::join_resource(self.idx));
            }
            self.result
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .expect("joined model thread produced no result (it panicked)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore, replay, Config, Policy};
    use std::sync::Arc;

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let cfg = Config {
            schedules: 50,
            ..Config::default()
        };
        explore(&cfg, || {
            let m = Arc::new(Mutex::new(0u32));
            let mut hs = Vec::new();
            for _ in 0..3 {
                let m = m.clone();
                hs.push(thread::spawn(move || {
                    let mut g = m.lock();
                    let v = *g;
                    // A yield inside the critical section tempts the
                    // scheduler to interleave; mutual exclusion must hold.
                    let (k, me) = sched::current();
                    k.yield_point(me);
                    *g = v + 1;
                }));
            }
            for h in hs {
                h.join();
            }
            assert_eq!(*m.lock(), 3);
        })
        .unwrap();
    }

    #[test]
    fn channel_crosses_model_threads() {
        let cfg = Config {
            schedules: 50,
            ..Config::default()
        };
        explore(&cfg, || {
            let ch = Arc::new(Channel::new());
            let tx = ch.clone();
            let producer = thread::spawn(move || {
                for i in 0..3 {
                    assert!(tx.send(i));
                }
                tx.close();
            });
            let mut got = Vec::new();
            while let Some(v) = ch.recv() {
                got.push(v);
            }
            producer.join();
            assert_eq!(got, vec![0, 1, 2]);
        })
        .unwrap();
    }

    #[test]
    fn waitgroup_synchronizes() {
        let cfg = Config {
            schedules: 50,
            ..Config::default()
        };
        explore(&cfg, || {
            let wg = Arc::new(WaitGroup::new());
            let flag = Arc::new(AtomicBool::new(false));
            wg.add(1);
            let (wg2, flag2) = (wg.clone(), flag.clone());
            let h = thread::spawn(move || {
                flag2.store(true, Ordering::Release);
                wg2.done();
            });
            wg.wait();
            // wait() returning means done() ran, so the store is visible.
            assert!(flag.load(Ordering::Acquire));
            h.join();
        })
        .unwrap();
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        // Two threads each wait on a condvar nobody signals.
        let err = replay(11, Policy::RandomWalk, 5_000, || {
            let m = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let h = thread::spawn(move || {
                let g = m2.lock();
                let _g = cv2.wait(g);
            });
            let g = m.lock();
            let _g = cv.wait(g);
            h.join();
        })
        .unwrap_err();
        assert!(err.contains("deadlock"), "got: {err}");
    }

    #[test]
    fn atomics_are_scheduling_points() {
        let cfg = Config {
            schedules: 30,
            ..Config::default()
        };
        explore(&cfg, || {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = a.clone();
            let h = thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            h.join();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        })
        .unwrap();
    }
}
