//! `graphblas-check`: correctness tooling for the graphblas workspace.
//!
//! Three instruments, one crate:
//!
//! 1. **[`sched`] + [`sync`]** — a deterministic concurrency model checker
//!    ("mini-shuttle"). Protocols are re-expressed over the instrumented
//!    primitives in [`sync`] (a mirror of `graphblas_exec::sync`) and run
//!    under a seeded schedule-controlled executor: only one thread runs at
//!    a time, every sync operation is a scheduling point, and the whole
//!    interleaving is a pure function of a `u64` seed — so any failure
//!    found by [`sched::explore`] is replayed exactly by [`sched::replay`].
//!    Used by the `tests/model_*.rs` suites to check the §III thread-pool
//!    park/wake protocol, channels, `WaitGroup`, pending-queue draining,
//!    and the paper's Fig. 1 two-thread scenario.
//!
//! 2. **[`verify`]** — deep container invariant verification: `grb_check`
//!    over every Table III storage format plus the §V deferred-error
//!    bookkeeping, re-exported from `graphblas_core::introspect` where it
//!    lives GrB_get-style next to `ObjectStats`.
//!
//! 3. **[`lint`]** — the repo-specific lint pass behind the `grblint`
//!    binary (`cargo run -p graphblas-check --bin grblint`), run by
//!    `scripts/check.sh`: forbids `Ordering::Relaxed` outside the obs
//!    counters, `unwrap`/`expect` in core/sparse non-test code, fallible
//!    public core APIs that bypass the `GrB_Info` error type, `unsafe`
//!    blocks without `// SAFETY:` comments, kernel/operation entry
//!    points without a telemetry span, and stale waivers that no longer
//!    suppress anything.
//!
//! 3b. **[`sa`]** — source-model static analysis behind the `grbsa`
//!    binary: a hand-rolled lexer and lightweight semantic model
//!    (declarations, function bodies, call edges) powering a lock-order
//!    cycle detector (potential-deadlock witnesses as `file:line`
//!    chains) and an atomics-ordering audit against the declared
//!    publish/consume protocol table. Shares [`report`]'s JSON findings
//!    schema with `grblint`.
//!
//! 4. **[`trace`]** — an independent reader for the Chrome-trace JSON
//!    that `GRB_TRACE` emits (`graphblas_obs::timeline`), behind the
//!    `tracecheck` binary: parses with its own zero-dependency JSON
//!    parser and replays per-thread `B`/`E` streams to prove balance
//!    and nesting.
//!
//! 5. **[`explain`]** — the matching reader for `GRB_EXPLAIN`
//!    decision-provenance exports (`graphblas_obs::events`), behind the
//!    `grbexplain` binary: re-checks the explain/v1 structural
//!    invariants, renders per-operation narratives with per-reason
//!    aggregates, and evaluates `--assert reason=<code>,min=<k>` gates.
//!
//! 5b. **[`metrics`]** — the independent reader for the Prometheus text
//!    expositions `GRB_METRICS_ADDR`/`GRB_METRICS_DUMP` produce
//!    (`graphblas_obs::export`), behind the `metricscheck` binary
//!    (`--require` family assertions, `--min-families` floors) and the
//!    `grbtop` live terminal viewer that polls the scrape endpoint.
//!
//! 6. **[`benchcmp`]** — baseline-vs-baseline kernel benchmark
//!    comparison behind the `benchcmp` binary: fails on median or p99
//!    regressions beyond a threshold (25% strict; `--smoke-tolerant`
//!    loosens it for noisy CI smoke runs and adds noise floors).

pub mod benchcmp;
pub mod explain;
pub mod lint;
pub mod metrics;
pub mod report;
pub mod sa;
pub mod sched;
pub mod sync;
pub mod trace;
pub mod verify;
