//! The lightweight semantic model behind `check::sa`.
//!
//! Built on [`super::lexer`], this module turns the workspace source into
//! the small set of facts the analyses need:
//!
//! - **Declarations**: struct fields and statics whose type mentions
//!   `Mutex`/`StdMutex`/`RwLock` (locks), `Condvar`/`StdCondvar`
//!   (condition variables), or an `Atomic*` type. Identity is
//!   `crate/file-stem::Owner.field` (or `crate/file-stem::NAME` for
//!   statics), so `core/matrix::Inner.state` and
//!   `core/vector::Inner.state` stay distinct locks.
//! - **Functions**: name, enclosing `impl` type, and body token range,
//!   giving the call graph its nodes.
//! - **Events** per function body: lock acquisitions with the set of
//!   locks already held (guards are tracked through `let` bindings,
//!   released by `drop(guard)` or end of enclosing block; bare
//!   acquisitions are temporaries released at end of statement),
//!   condvar waits with the non-guard locks held across them, atomic
//!   operations with their `Ordering` arguments, and call sites with the
//!   held-lock snapshot for interprocedural propagation.
//! - **Annotations**: `// grbsa: protocol(...)` and `// grbsa: allow(...)`
//!   comments, block-scoped (they cover from their line to the end of
//!   the enclosing block; doc comments never arm an annotation).
//!
//! Known, deliberate imprecision (this is a bug-finder, not a verifier —
//! see DESIGN.md): receivers are resolved by final field/static name
//! (same file first, then unique-across-workspace, else skipped); calls
//! resolve only when unambiguous (`self.f()` within the impl, or a
//! globally unique function name outside a denylist of ubiquitous
//! method names); helper functions that *return* guards (e.g.
//! `lock_completed()`) are summarized for the locks they take but do not
//! register as held in the caller; closure bodies are attributed to the
//! function that syntactically contains them.

use super::lexer::{lex, Tok, Token};
use std::collections::HashMap;
use std::path::Path;

/// Source files whose lock/condvar declarations and function bodies are
/// *primitive definitions* (the `exec::sync` wrappers and their `check`
/// mirrors). Their internal `StdMutex` fields are implementation details
/// of the primitives themselves, so they are excluded from lock-order
/// extraction — a wrapper `Mutex::lock` is treated as a leaf operation
/// at the call site, exactly like `std::sync::Mutex::lock`.
const PRIMITIVE_FILES: &[&str] = &["crates/exec/src/sync.rs", "crates/check/src/sync.rs"];

/// Method names too common to resolve by global uniqueness: resolving
/// `x.wait()` to *the one* `wait` in the workspace would routinely pick
/// an unrelated impl. Self-calls (`self.wait()`) still resolve within
/// their impl; everything here is only skipped for non-self receivers.
const METHOD_DENYLIST: &[&str] = &[
    "new", "default", "clone", "drop", "len", "is_empty", "push", "pop", "insert", "remove",
    "get", "set", "take", "wait", "lock", "read", "write", "drain", "clear", "iter", "next",
    "join", "send", "recv", "load", "store", "swap", "add", "sub", "done", "spawn", "run",
    "notify_one", "notify_all", "fmt", "eq", "cmp", "hash", "from", "into", "as_ref",
    // Combinators: `opt.map(..)` must not resolve to a workspace fn that
    // happens to be the unique `map` — receivers of these are almost
    // always std types.
    "map", "and_then", "or_else", "filter", "fold", "for_each", "any", "all", "find",
    "position", "count", "collect", "extend", "contains", "min", "max", "ok", "err",
];

/// Whether a method name is too ubiquitous for unique-name call
/// resolution (see [`METHOD_DENYLIST`]).
pub(crate) fn method_denylisted(name: &str) -> bool {
    METHOD_DENYLIST.contains(&name)
}

const ATOMIC_OPS: &[&str] = &[
    "load", "store", "swap", "compare_exchange", "compare_exchange_weak", "fetch_add",
    "fetch_sub", "fetch_and", "fetch_or", "fetch_xor", "fetch_max", "fetch_min", "fetch_update",
];

const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "else", "move", "in", "as", "let", "mut",
    "ref", "break", "continue", "unsafe", "pub", "fn", "struct", "impl", "enum", "trait",
    "static", "const", "use", "mod", "where", "dyn", "box", "Some", "Ok", "Err", "None",
];

/// Kind of lock a declaration introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// A declared lock (struct field or static).
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub id: String,
    pub kind: LockKind,
    pub file: String,
    pub line: usize,
}

/// A declared atomic (struct field or static).
#[derive(Debug, Clone)]
pub struct AtomicDecl {
    pub id: String,
    pub file: String,
    pub line: usize,
}

/// A function in the call graph.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare name (`lock`), used for unique-name resolution.
    pub name: String,
    /// `Type::name` when inside an `impl Type`, else the bare name.
    pub qual: String,
    /// Enclosing impl type, if any.
    pub impl_type: Option<String>,
    pub file: String,
    pub line: usize,
}

/// A lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquire {
    pub lock: String,
    /// Lock ids already held when this acquisition executes.
    pub held: Vec<String>,
    pub line: usize,
}

/// A condvar wait inside a function body.
#[derive(Debug, Clone)]
pub struct WaitSite {
    pub condvar: String,
    /// Locks held across the wait *excluding* the guard handed to it.
    pub held_other: Vec<String>,
    pub line: usize,
}

/// A call site with the held-lock snapshot for summary propagation.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub is_self: bool,
    pub held: Vec<String>,
    pub line: usize,
}

/// An atomic operation site with its `Ordering` arguments.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Resolved declaration id, when the receiver matched one.
    pub atomic: Option<String>,
    /// Receiver spelling as written (for diagnostics).
    pub recv: String,
    pub op: String,
    /// All `Ordering::X` names in the argument list (compare_exchange
    /// carries two; the failure ordering rides along with the success
    /// one for protocol classification).
    pub orderings: Vec<String>,
    pub file: String,
    pub krate: String,
    pub line: usize,
}

/// Per-function extracted events.
#[derive(Debug, Default)]
pub struct FnEvents {
    pub acquires: Vec<Acquire>,
    pub waits: Vec<WaitSite>,
    pub calls: Vec<CallSite>,
}

/// What a `// grbsa:` comment declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnKind {
    /// `grbsa: allow(rule, ...)` — waives findings of the named rules.
    Allow,
    /// `grbsa: protocol(name, ...)` — classifies Relaxed sites under the
    /// named protocol(s) from the protocol table.
    Protocol,
}

/// One parsed annotation, block-scoped.
#[derive(Debug, Clone)]
pub struct Annotation {
    pub kind: AnnKind,
    pub names: Vec<String>,
    pub file: String,
    pub line: usize,
    /// Last line the annotation covers (end of the enclosing block at
    /// the point the comment appears; end of file for top-level
    /// annotations).
    pub end_line: usize,
}

impl Annotation {
    /// Whether this annotation covers a site at `file:line`.
    pub fn covers(&self, file: &str, line: usize) -> bool {
        self.file == file && self.line <= line && line <= self.end_line
    }
}

/// Model-level statistics, surfaced by `grbsa --verbose` so the
/// analysis's coverage (and the size of its blind spots) is inspectable.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    pub files: usize,
    pub fns: usize,
    pub locks: usize,
    pub condvars: usize,
    pub atomics: usize,
    pub acquire_events: usize,
    pub atomic_sites: usize,
    pub calls_resolved: usize,
    pub calls_skipped: usize,
}

/// The assembled source model.
#[derive(Debug, Default)]
pub struct Model {
    pub locks: Vec<LockDecl>,
    pub condvars: Vec<LockDecl>,
    pub atomics: Vec<AtomicDecl>,
    pub fns: Vec<FnInfo>,
    /// Indexed parallel to `fns`.
    pub events: Vec<FnEvents>,
    pub atomic_sites: Vec<AtomicSite>,
    pub annotations: Vec<Annotation>,
    pub stats: Stats,
}

/// Declaration lookup tables: final-name -> declaration indices.
#[derive(Default)]
struct DeclIndex {
    locks: HashMap<String, Vec<usize>>,
    condvars: HashMap<String, Vec<usize>>,
    atomics: HashMap<String, Vec<usize>>,
}

/// Builds the model from `(rel_path, source)` pairs. Paths use `/`
/// separators relative to the workspace root; test code (everything from
/// a top-level `#[cfg(test)]` line to end of file, matching `grblint`'s
/// convention) is excluded before lexing.
pub fn build(files: &[(String, String)]) -> Model {
    let mut model = Model::default();
    let mut lexed: Vec<(String, String, bool, Vec<Token>)> = Vec::new();
    for (rel, source) in files {
        let krate = crate_of(rel);
        let truncated = strip_tests(source);
        let tokens = lex(truncated);
        let primitive = PRIMITIVE_FILES.contains(&rel.as_str());
        lexed.push((rel.clone(), krate, primitive, tokens));
    }
    model.stats.files = lexed.len();

    // Pass 1: declarations + function table + annotations, all files.
    let mut names = DeclIndex::default();
    let mut fn_bodies: Vec<(usize, usize, usize)> = Vec::new(); // (file idx, start, end)
    for (fi, (rel, _krate, primitive, tokens)) in lexed.iter().enumerate() {
        scan_items(
            fi,
            rel,
            *primitive,
            tokens,
            &mut model,
            &mut names,
            &mut fn_bodies,
        );
        scan_annotations(rel, tokens, &mut model.annotations);
    }
    model.stats.locks = model.locks.len();
    model.stats.condvars = model.condvars.len();
    model.stats.atomics = model.atomics.len();
    model.stats.fns = model.fns.len();

    // Pass 2: per-function events, now that every declaration is known.
    let mut events = Vec::new();
    let mut atomic_sites = Vec::new();
    for (fi, start, end) in &fn_bodies {
        let (rel, krate, primitive, tokens) = &lexed[*fi];
        let body: Vec<&Token> = tokens[*start..*end]
            .iter()
            .filter(|t| !t.is_comment())
            .collect();
        let (ev, sites) = scan_body(&body, rel, krate, *primitive, &names, &model);
        events.push(ev);
        atomic_sites.extend(sites);
    }
    model.events = events;
    model.atomic_sites = atomic_sites;
    model.stats.acquire_events = model.events.iter().map(|e| e.acquires.len()).sum();
    model.stats.atomic_sites = model.atomic_sites.len();
    model
}

/// Reads the workspace at `root` and builds the model from every
/// in-scope `.rs` file (same scope rules as `grblint`: `tests/`,
/// `benches/`, `examples/`, and `target/` directories are skipped).
pub fn build_root(root: &Path) -> std::io::Result<(Model, Vec<String>)> {
    let mut files = Vec::new();
    crate::lint::collect_sources(root, &mut files)?;
    let mut srcs = Vec::new();
    let mut rels = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        rels.push(rel.clone());
        srcs.push((rel, source));
    }
    Ok((build(&srcs), rels))
}

/// Crate name from a workspace-relative path (`crates/exec/src/pool.rs`
/// -> `exec`); files outside `crates/` report `workspace`.
pub fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        "workspace".to_string()
    }
}

/// Truncates `source` at the first top-level `#[cfg(test)]` line —
/// the same test-exclusion convention `grblint` uses.
fn strip_tests(source: &str) -> &str {
    let mut offset = 0;
    for line in source.lines() {
        if line.trim() == "#[cfg(test)]" {
            return &source[..offset];
        }
        offset += line.len() + 1;
    }
    source
}

fn file_stem(rel: &str) -> String {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    base.strip_suffix(".rs").unwrap_or(base).to_string()
}

/// Classification of a declared type by the identifiers it mentions.
fn classify_type(idents: &[String]) -> Option<DeclKind> {
    for id in idents {
        if id == "Mutex" || id == "StdMutex" {
            return Some(DeclKind::Lock(LockKind::Mutex));
        }
        if id == "RwLock" || id == "StdRwLock" {
            return Some(DeclKind::Lock(LockKind::RwLock));
        }
        if id == "Condvar" || id == "StdCondvar" {
            return Some(DeclKind::Condvar);
        }
        if id.starts_with("Atomic") && id.len() > "Atomic".len() {
            return Some(DeclKind::Atomic);
        }
    }
    None
}

enum DeclKind {
    Lock(LockKind),
    Condvar,
    Atomic,
}

/// Scope stack entry for the item scanner.
enum ScopeKind {
    Impl(String),
    Fn(usize),
    Other,
}

#[allow(clippy::too_many_arguments)]
fn scan_items(
    _file_idx: usize,
    rel: &str,
    primitive: bool,
    tokens: &[Token],
    model: &mut Model,
    names: &mut DeclIndex,
    fn_bodies: &mut Vec<(usize, usize, usize)>,
) {
    let stem = file_stem(rel);
    let toks: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut pending_fn: Option<(String, usize)> = None; // (name, line)
    let mut pending_impl: Option<Vec<(usize, String)>> = None; // idents after `impl`
    let mut impl_saw_for = false;
    // Angle-bracket depth inside an `impl<...>` header: identifiers inside
    // the generics list are parameters and bounds, not the self type.
    let mut impl_angle = 0isize;
    let mut i = 0;
    while i < toks.len() {
        let (raw_idx, t) = toks[i];
        match &t.tok {
            Tok::Ident(w) if w == "struct" && pending_impl.is_none() => {
                // Parse the struct inline and jump past its body so field
                // declarations never masquerade as expressions.
                let name = toks
                    .get(i + 1)
                    .and_then(|(_, t)| t.ident())
                    .unwrap_or("")
                    .to_string();
                let mut j = i + 2;
                // Find `{` (field struct), `;` (unit), or `(` (tuple).
                while j < toks.len() {
                    let tt = toks[j].1;
                    if tt.is_punct('{') {
                        let end = match_brace(&toks, j);
                        if !primitive && !name.is_empty() {
                            parse_struct_fields(
                                &toks[j + 1..end],
                                &stem,
                                &name,
                                rel,
                                model,
                                names,
                            );
                        }
                        // Land on `}`; the loop's advance steps past it.
                        j = end;
                        break;
                    }
                    if tt.is_punct(';') || tt.is_punct('(') {
                        break;
                    }
                    j += 1;
                }
                if j >= toks.len() {
                    break;
                }
                i = j;
            }
            Tok::Ident(w) if w == "impl" => {
                pending_impl = Some(Vec::new());
                impl_saw_for = false;
                impl_angle = 0;
            }
            Tok::Ident(w) if w == "for" && pending_impl.is_some() => {
                impl_saw_for = true;
                if let Some(p) = pending_impl.as_mut() {
                    p.clear();
                }
            }
            Tok::Ident(w) if w == "fn" => {
                let name = toks
                    .get(i + 1)
                    .and_then(|(_, t)| t.ident())
                    .unwrap_or("")
                    .to_string();
                if !name.is_empty() {
                    pending_fn = Some((name, t.line));
                }
            }
            Tok::Ident(w) if w == "static" => {
                // `static [mut] NAME: Type = …` — classify the type.
                let mut j = i + 1;
                if toks.get(j).and_then(|(_, t)| t.ident()) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = toks.get(j).and_then(|(_, t)| t.ident()) {
                    let name = name.to_string();
                    let line = t.line;
                    let mut ty = Vec::new();
                    let mut k = j + 1;
                    while k < toks.len() {
                        let tt = toks[k].1;
                        if tt.is_punct('=') || tt.is_punct(';') {
                            break;
                        }
                        if let Some(id) = tt.ident() {
                            ty.push(id.to_string());
                        }
                        k += 1;
                    }
                    if !primitive {
                        record_decl(
                            classify_type(&ty),
                            format!("{}/{}::{}", crate_of(rel), stem, name),
                            name,
                            rel,
                            line,
                            model,
                            names,
                        );
                    }
                    i = k;
                }
            }
            Tok::Punct('<') if pending_impl.is_some() => impl_angle += 1,
            Tok::Punct('>') if pending_impl.is_some() => {
                // `->` in a bound like `F: FnOnce() -> R` is not a closer.
                let arrow = i > 0 && toks[i - 1].1.is_punct('-');
                if !arrow {
                    impl_angle -= 1;
                }
            }
            Tok::Ident(w) if pending_impl.is_some() && impl_angle == 0 && !is_kw(w) => {
                if let Some(p) = pending_impl.as_mut() {
                    p.push((i, w.clone()));
                }
            }
            Tok::Punct('{') => {
                let kind = if let Some(p) = pending_impl.take() {
                    // Self type: last ident of the (possibly path) run
                    // after `for`, or after the generics otherwise. The
                    // collected idents exclude generic-parameter names
                    // only loosely; taking the last path segment before
                    // `{` — the type constructor — is robust for every
                    // impl in this workspace.
                    let ty = impl_self_type(&toks, &p, impl_saw_for);
                    ScopeKind::Impl(ty)
                } else if let Some((name, line)) = pending_fn.take() {
                    let impl_type = scopes.iter().rev().find_map(|s| match s {
                        ScopeKind::Impl(t) => Some(t.clone()),
                        _ => None,
                    });
                    let qual = match &impl_type {
                        Some(t) => format!("{}::{}", t, name),
                        None => name.clone(),
                    };
                    let fn_idx = model.fns.len();
                    model.fns.push(FnInfo {
                        name,
                        qual,
                        impl_type,
                        file: rel.to_string(),
                        line,
                    });
                    // Body range recorded when the scope pops.
                    fn_bodies.push((_file_idx, raw_idx + 1, raw_idx + 1));
                    ScopeKind::Fn(fn_idx)
                } else {
                    ScopeKind::Other
                };
                scopes.push(kind);
            }
            Tok::Punct('}') => {
                if let Some(ScopeKind::Fn(fn_idx)) = scopes.last() {
                    // Close the innermost open fn body whose index matches.
                    if let Some(entry) = fn_bodies.get_mut(*fn_idx) {
                        entry.2 = raw_idx;
                    }
                }
                scopes.pop();
            }
            Tok::Punct(';') => {
                pending_fn = None; // bodyless trait fn
                pending_impl = None;
            }
            _ => {}
        }
        i += 1;
    }
}

fn is_kw(w: &str) -> bool {
    KEYWORDS.contains(&w) || w == "where" || w == "unsafe" || w == "const" || w == "dyn"
}

/// Extracts the self-type name for an `impl` header from the idents
/// collected between `impl` (or the last `for`) and the opening brace.
fn impl_self_type(
    _toks: &[(usize, &Token)],
    collected: &[(usize, String)],
    _saw_for: bool,
) -> String {
    // After a `for`, the collector was cleared, so `collected` holds the
    // self-type path (plus its generic arguments' idents). The type
    // constructor is the first ident not used as a generic *parameter*;
    // for every impl in this workspace the first collected ident after
    // filtering single-uppercase-letter parameter names is the type.
    for (_, id) in collected {
        let bytes = id.as_bytes();
        let single_upper = bytes.len() == 1 && bytes[0].is_ascii_uppercase();
        if !single_upper && !is_kw(id) {
            return id.clone();
        }
    }
    collected
        .first()
        .map(|(_, s)| s.clone())
        .unwrap_or_else(|| "?".to_string())
}

/// Finds the index (into `toks`) of the `}` matching the `{` at `open`.
fn match_brace(toks: &[(usize, &Token)], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].1.is_punct('{') {
            depth += 1;
        } else if toks[i].1.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len() - 1
}

/// Parses `name: Type` fields from a struct body token slice and records
/// lock/condvar/atomic declarations.
fn parse_struct_fields(
    body: &[(usize, &Token)],
    stem: &str,
    struct_name: &str,
    rel: &str,
    model: &mut Model,
    names: &mut DeclIndex,
) {
    let mut i = 0;
    let mut depth = 0isize; // angle/paren/bracket/brace nesting inside the body
    let mut field: Option<(String, usize)> = None;
    let mut ty: Vec<String> = Vec::new();
    while i < body.len() {
        let t = body[i].1;
        match &t.tok {
            Tok::Punct(c @ ('<' | '(' | '[' | '{')) => {
                // `->`'s `>` is handled below; `<` from comparisons does
                // not occur in type position.
                let _ = c;
                depth += 1;
            }
            Tok::Punct('>') => {
                depth -= 1;
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 0 => {
                flush_field(&mut field, &mut ty, stem, struct_name, rel, model, names);
            }
            Tok::Punct(':') if depth == 0 && field.is_none() => {
                // The ident just before the colon is the field name.
                if i > 0 {
                    if let Some(name) = body[i - 1].1.ident() {
                        field = Some((name.to_string(), body[i - 1].1.line));
                    }
                }
            }
            Tok::Ident(w) => {
                if field.is_some() {
                    ty.push(w.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    flush_field(&mut field, &mut ty, stem, struct_name, rel, model, names);
}

fn flush_field(
    field: &mut Option<(String, usize)>,
    ty: &mut Vec<String>,
    stem: &str,
    struct_name: &str,
    rel: &str,
    model: &mut Model,
    names: &mut DeclIndex,
) {
    if let Some((name, line)) = field.take() {
        let kind = classify_type(ty);
        record_decl(
            kind,
            format!("{}/{}::{}.{}", crate_of(rel), stem, struct_name, name),
            name,
            rel,
            line,
            model,
            names,
        );
    }
    ty.clear();
}

fn record_decl(
    kind: Option<DeclKind>,
    id: String,
    name: String,
    rel: &str,
    line: usize,
    model: &mut Model,
    names: &mut DeclIndex,
) {
    match kind {
        Some(DeclKind::Lock(k)) => {
            names.locks.entry(name).or_default().push(model.locks.len());
            model.locks.push(LockDecl {
                id,
                kind: k,
                file: rel.to_string(),
                line,
            });
        }
        Some(DeclKind::Condvar) => {
            names
                .condvars
                .entry(name)
                .or_default()
                .push(model.condvars.len());
            model.condvars.push(LockDecl {
                id,
                kind: LockKind::Mutex,
                file: rel.to_string(),
                line,
            });
        }
        Some(DeclKind::Atomic) => {
            names
                .atomics
                .entry(name)
                .or_default()
                .push(model.atomics.len());
            model.atomics.push(AtomicDecl {
                id,
                file: rel.to_string(),
                line,
            });
        }
        None => {}
    }
}

/// Resolves a receiver name to a declaration id: same-file declarations
/// win; otherwise a workspace-unique name resolves; otherwise `None`.
fn resolve<'a>(
    name: &str,
    file: &str,
    by_name: &HashMap<String, Vec<usize>>,
    ids: impl Fn(usize) -> &'a str,
    files: impl Fn(usize) -> &'a str,
) -> Option<String> {
    let cands = by_name.get(name)?;
    for &c in cands {
        if files(c) == file {
            return Some(ids(c).to_string());
        }
    }
    if cands.len() == 1 {
        return Some(ids(cands[0]).to_string());
    }
    None
}

struct Guard {
    name: String,
    lock: String,
    depth: usize,
}

type BodyScan = (FnEvents, Vec<AtomicSite>);

/// Scans one comment-free function body token slice for events.
fn scan_body(
    body: &[&Token],
    rel: &str,
    krate: &str,
    primitive: bool,
    names: &DeclIndex,
    model: &Model,
) -> BodyScan {
    let mut ev = FnEvents::default();
    let mut sites = Vec::new();
    let resolve_lock = |n: &str| {
        resolve(
            n,
            rel,
            &names.locks,
            |i| model.locks[i].id.as_str(),
            |i| model.locks[i].file.as_str(),
        )
    };
    let resolve_cv = |n: &str| {
        resolve(
            n,
            rel,
            &names.condvars,
            |i| model.condvars[i].id.as_str(),
            |i| model.condvars[i].file.as_str(),
        )
    };
    let resolve_atomic = |n: &str| {
        resolve(
            n,
            rel,
            &names.atomics,
            |i| model.atomics[i].id.as_str(),
            |i| model.atomics[i].file.as_str(),
        )
    };

    let mut guards: Vec<Guard> = Vec::new();
    let mut temps: Vec<String> = Vec::new();
    let mut pending_let: Option<String> = None;
    let mut depth = 0usize;
    let mut paren = 0usize;
    let held = |guards: &[Guard], temps: &[String]| -> Vec<String> {
        let mut h: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
        h.extend(temps.iter().cloned());
        h.dedup();
        h
    };

    let mut i = 0;
    while i < body.len() {
        let t = body[i];
        match &t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                temps.clear();
                pending_let = None;
            }
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren = paren.saturating_sub(1),
            Tok::Punct(';') if paren == 0 => {
                temps.clear();
                pending_let = None;
            }
            Tok::Ident(w) if w == "let" => {
                // `let [mut] name = …` — remember the binding name so a
                // terminal lock call binds a guard to it.
                let mut j = i + 1;
                if body.get(j).and_then(|t| t.ident()) == Some("mut") {
                    j += 1;
                }
                if let (Some(name), true) = (
                    body.get(j).and_then(|t| t.ident()),
                    body.get(j + 1).map(|t| t.is_punct('=')).unwrap_or(false),
                ) {
                    pending_let = Some(name.to_string());
                }
            }
            Tok::Ident(w) if w == "drop" => {
                // `drop(guard)` releases the named guard.
                if body.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false) {
                    if let Some(name) = body.get(i + 2).and_then(|t| t.ident()) {
                        if body.get(i + 3).map(|t| t.is_punct(')')).unwrap_or(false) {
                            guards.retain(|g| g.name != name);
                        }
                    }
                }
            }
            Tok::Punct('.') => {
                let Some(m) = body.get(i + 1).and_then(|t| t.ident()) else {
                    i += 1;
                    continue;
                };
                if !body.get(i + 2).map(|t| t.is_punct('(')).unwrap_or(false) {
                    i += 1;
                    continue;
                }
                let recv = receiver_name(body, i);
                let line = body[i + 1].line;
                let close = match_paren(body, i + 2);

                // Lock acquisition?
                let is_lock_call = matches!(m, "lock" | "read" | "write");
                if is_lock_call && !primitive {
                    if let Some(name) = &recv {
                        if let Some(lock) = resolve_lock(name) {
                            let kind = model
                                .locks
                                .iter()
                                .find(|l| l.id == lock)
                                .map(|l| l.kind)
                                .unwrap_or(LockKind::Mutex);
                            let matches_kind = match kind {
                                LockKind::Mutex => m == "lock",
                                LockKind::RwLock => m == "read" || m == "write",
                            };
                            if matches_kind {
                                ev.acquires.push(Acquire {
                                    lock: lock.clone(),
                                    held: held(&guards, &temps),
                                    line,
                                });
                                // Walk past `.unwrap()` / `.expect(..)` /
                                // `.unwrap_or_else(..)` adapters — a
                                // std-style `x.lock().unwrap();` still
                                // binds the guard.
                                let mut after = close + 1;
                                while body.get(after).map(|t| t.is_punct('.')).unwrap_or(false) {
                                    let adapter = body.get(after + 1).and_then(|t| t.ident());
                                    let opens = body
                                        .get(after + 2)
                                        .map(|t| t.is_punct('('))
                                        .unwrap_or(false);
                                    match (adapter, opens) {
                                        (Some("unwrap" | "expect" | "unwrap_or_else"), true) => {
                                            after = match_paren(body, after + 2) + 1;
                                        }
                                        _ => break,
                                    }
                                }
                                let terminal = body
                                    .get(after)
                                    .map(|t| t.is_punct(';'))
                                    .unwrap_or(false);
                                if terminal && pending_let.is_some() {
                                    let g = pending_let.take().unwrap_or_default();
                                    guards.push(Guard {
                                        name: g,
                                        lock,
                                        depth,
                                    });
                                } else {
                                    temps.push(lock);
                                }
                                i += 2;
                                continue;
                            }
                        }
                    }
                }

                // Condvar wait?
                if matches!(m, "wait" | "wait_while" | "wait_timeout") && !primitive {
                    if let Some(name) = &recv {
                        if let Some(cv) = resolve_cv(name) {
                            let guard_arg = body.get(i + 3).and_then(|t| t.ident());
                            let guard_lock = guard_arg
                                .and_then(|a| guards.iter().find(|g| g.name == a))
                                .map(|g| g.lock.clone());
                            let mut other = held(&guards, &temps);
                            if let Some(gl) = guard_lock {
                                other.retain(|l| *l != gl);
                            }
                            ev.waits.push(WaitSite {
                                condvar: cv,
                                held_other: other,
                                line,
                            });
                            i += 2;
                            continue;
                        }
                    }
                }

                // Atomic operation with an explicit Ordering argument?
                if ATOMIC_OPS.contains(&m) {
                    let orderings = orderings_in(&body[i + 2..=close.min(body.len() - 1)]);
                    if !orderings.is_empty() {
                        let recv_name = recv.clone().unwrap_or_else(|| "?".to_string());
                        sites.push(AtomicSite {
                            atomic: recv.as_deref().and_then(resolve_atomic),
                            recv: recv_name,
                            op: m.to_string(),
                            orderings,
                            file: rel.to_string(),
                            krate: krate.to_string(),
                            line,
                        });
                        i += 2;
                        continue;
                    }
                }

                // Plain method call: record for summary propagation.
                if !KEYWORDS.contains(&m) {
                    let is_self = recv_chain_is_self(body, i);
                    ev.calls.push(CallSite {
                        name: m.to_string(),
                        is_self,
                        held: held(&guards, &temps),
                        line,
                    });
                }
                i += 2;
                continue;
            }
            Tok::Ident(name) => {
                // Free-function call: `name(` not preceded by `.` and not
                // a macro (`name!(`).
                let is_call = body.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false);
                let prev_dot = i > 0 && body[i - 1].is_punct('.');
                let is_macro = body.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false);
                if is_call && !prev_dot && !is_macro && !KEYWORDS.contains(&name.as_str()) {
                    ev.calls.push(CallSite {
                        name: name.clone(),
                        is_self: false,
                        held: held(&guards, &temps),
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    (ev, sites)
}

/// The receiver's final identifier for a method call: the token just
/// before the `.` at `dot`, skipping one balanced `[...]` or `(...)`
/// group (so `RING[i].fetch_add` resolves `RING` and `pending().drains`
/// resolves `drains` via the direct-ident case at the outer dot).
fn receiver_name(body: &[&Token], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut i = dot - 1;
    if body[i].is_punct(']') || body[i].is_punct(')') {
        let open = if body[i].is_punct(']') { '[' } else { '(' };
        let close = if open == '[' { ']' } else { ')' };
        let mut depth = 0usize;
        loop {
            if body[i].is_punct(close) {
                depth += 1;
            } else if body[i].is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        i -= 1;
        // `pending().x` never lands here (the ident is adjacent to the
        // dot); an index expression lands on the indexed name. A call
        // result like `f().load(...)` yields the fn name — not a
        // declared atomic/lock, so resolution correctly fails.
    }
    body[i].ident().map(|s| s.to_string())
}

/// Whether the dotted receiver chain ending at the `.` at `dot` starts
/// at `self` (walks back over `ident . ident . …`).
fn recv_chain_is_self(body: &[&Token], dot: usize) -> bool {
    let mut i = dot;
    loop {
        if i == 0 {
            return false;
        }
        let prev = body[i - 1];
        if let Some(id) = prev.ident() {
            if id == "self" {
                return true;
            }
            if i >= 2 && body[i - 2].is_punct('.') {
                i -= 2;
                continue;
            }
            return false;
        }
        return false;
    }
}

/// Finds the index of the `)` matching the `(` at `open`.
fn match_paren(body: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < body.len() {
        if body[i].is_punct('(') {
            depth += 1;
        } else if body[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    body.len() - 1
}

/// Collects `Ordering::Name` occurrences in an argument token slice.
fn orderings_in(args: &[&Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < args.len() {
        if args[i].ident() == Some("Ordering")
            && args[i + 1].is_punct(':')
            && args[i + 2].is_punct(':')
        {
            if let Some(name) = args[i + 3].ident() {
                out.push(name.to_string());
                i += 4;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Scans a file's token stream for `// grbsa:` annotations, computing
/// each one's block scope from brace depth at the comment.
fn scan_annotations(rel: &str, tokens: &[Token], out: &mut Vec<Annotation>) {
    // Pending annotations: (index into out, depth at comment).
    let mut open: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut last_line = 1;
    for t in tokens {
        last_line = t.line;
        match &t.tok {
            Tok::Comment { text, doc } if !doc => {
                for (kind, names, line) in parse_grbsa_comment(text, t.line) {
                    open.push((out.len(), depth));
                    out.push(Annotation {
                        kind,
                        names,
                        file: rel.to_string(),
                        line,
                        end_line: usize::MAX,
                    });
                }
            }
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                // Close every annotation whose block just ended.
                open.retain(|(idx, d)| {
                    if depth < *d {
                        out[*idx].end_line = t.line;
                        false
                    } else {
                        true
                    }
                });
            }
            _ => {}
        }
    }
    for (idx, _) in open {
        out[idx].end_line = last_line;
    }
}

/// Parses `grbsa: allow(a, b)` / `grbsa: protocol(x)` clauses out of one
/// comment's text. Multiple clauses per comment are allowed.
fn parse_grbsa_comment(text: &str, line: usize) -> Vec<(AnnKind, Vec<String>, usize)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("grbsa:") {
        rest = &rest[pos + "grbsa:".len()..];
        let trimmed = rest.trim_start();
        let kind = if trimmed.starts_with("allow(") {
            Some((AnnKind::Allow, "allow("))
        } else if trimmed.starts_with("protocol(") {
            Some((AnnKind::Protocol, "protocol("))
        } else {
            None
        };
        if let Some((kind, prefix)) = kind {
            let body = &trimmed[prefix.len()..];
            if let Some(close) = body.find(')') {
                let names: Vec<String> = body[..close]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if !names.is_empty() {
                    out.push((kind, names, line));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(files: &[(&str, &str)]) -> Model {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(r, s)| (r.to_string(), s.to_string()))
            .collect();
        build(&owned)
    }

    const LOCK_SRC: &str = r#"
use std::sync::{Mutex, Condvar};
struct Q { state: Mutex<usize>, cv: Condvar, n: usize }
impl Q {
    fn push(&self) {
        let mut st = self.state.lock().unwrap();
        *st += 1;
        helper();
        drop(st);
        self.cv.notify_one();
    }
    fn pop(&self) {
        let mut st = self.state.lock().unwrap();
        while *st == 0 {
            st = self.cv.wait(st).unwrap();
        }
    }
}
fn helper() {}
"#;

    #[test]
    fn declarations_and_identities() {
        let m = model_of(&[("crates/exec/src/q.rs", LOCK_SRC)]);
        assert_eq!(m.locks.len(), 1);
        assert_eq!(m.locks[0].id, "exec/q::Q.state");
        assert_eq!(m.condvars.len(), 1);
        assert_eq!(m.condvars[0].id, "exec/q::Q.cv");
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].qual, "Q::push");
        assert_eq!(m.fns[2].qual, "helper");
    }

    #[test]
    fn guard_tracking_and_drop_release() {
        let m = model_of(&[("crates/exec/src/q.rs", LOCK_SRC)]);
        let push = &m.events[0];
        assert_eq!(push.acquires.len(), 1);
        assert!(push.acquires[0].held.is_empty());
        // helper() is called while the guard is held…
        let call = push.calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(call.held, vec!["exec/q::Q.state".to_string()]);
        // …but notify_one comes after drop(st).
        let notify = push.calls.iter().find(|c| c.name == "notify_one").unwrap();
        assert!(notify.held.is_empty());
    }

    #[test]
    fn condvar_wait_excludes_its_guard() {
        let m = model_of(&[("crates/exec/src/q.rs", LOCK_SRC)]);
        let pop = &m.events[1];
        assert_eq!(pop.waits.len(), 1);
        assert!(pop.waits[0].held_other.is_empty());
    }

    #[test]
    fn atomic_sites_resolve_and_carry_orderings() {
        let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
struct C { hits: AtomicUsize }
static SEQ: AtomicUsize = AtomicUsize::new(0);
impl C {
    fn bump(&self) -> usize {
        self.hits.fetch_add(1, Ordering::Relaxed);
        SEQ.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).ok();
        SEQ.load(Ordering::Acquire)
    }
}
"#;
        let m = model_of(&[("crates/obs/src/c.rs", src)]);
        assert_eq!(m.atomics.len(), 2);
        assert_eq!(m.atomic_sites.len(), 3);
        let fa = &m.atomic_sites[0];
        assert_eq!(fa.atomic.as_deref(), Some("obs/c::C.hits"));
        assert_eq!(fa.orderings, vec!["Relaxed"]);
        let cx = &m.atomic_sites[1];
        assert_eq!(cx.atomic.as_deref(), Some("obs/c::SEQ"));
        assert_eq!(cx.orderings, vec!["AcqRel", "Relaxed"]);
    }

    #[test]
    fn cross_file_unique_name_resolution() {
        let a = "use std::sync::Mutex;\npub struct R { registry: Mutex<usize> }\n";
        let b = r#"
fn touch() {
    REG.registry.lock();
}
static REG: usize = 0;
"#;
        // `registry` is unique across the workspace, so the use in b.rs
        // resolves to the declaration in a.rs.
        let m = model_of(&[("crates/obs/src/a.rs", a), ("crates/exec/src/b.rs", b)]);
        assert_eq!(m.events[0].acquires.len(), 1);
        assert_eq!(m.events[0].acquires[0].lock, "obs/a::R.registry");
    }

    #[test]
    fn test_code_is_excluded() {
        let src = "struct S;\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    static M: Mutex<u8> = Mutex::new(0);\n}\n";
        let m = model_of(&[("crates/exec/src/s.rs", src)]);
        assert!(m.locks.is_empty());
    }

    #[test]
    fn primitive_files_contribute_no_locks() {
        let m = model_of(&[(
            "crates/exec/src/sync.rs",
            "use std::sync::Mutex as StdMutex;\npub struct Mutex<T> { inner: StdMutex<T> }\n",
        )]);
        assert!(m.locks.is_empty());
    }

    #[test]
    fn annotations_are_block_scoped() {
        let src = r#"
fn f() {
    {
        // grbsa: protocol(counter)
        a();
        b();
    }
    c();
}
"#;
        let m = model_of(&[("crates/exec/src/f.rs", src)]);
        assert_eq!(m.annotations.len(), 1);
        let a = &m.annotations[0];
        assert_eq!(a.kind, AnnKind::Protocol);
        assert_eq!(a.names, vec!["counter"]);
        assert!(a.covers("crates/exec/src/f.rs", 5));
        assert!(a.covers("crates/exec/src/f.rs", 6));
        assert!(!a.covers("crates/exec/src/f.rs", 8), "c() is outside the block");
    }

    #[test]
    fn doc_comments_never_arm_annotations() {
        let src = "/// grbsa: allow(lock-order-cycle)\nfn f() {}\n";
        let m = model_of(&[("crates/exec/src/f.rs", src)]);
        assert!(m.annotations.is_empty());
    }

    #[test]
    fn temp_guard_held_to_end_of_statement() {
        let src = r#"
use std::sync::Mutex;
struct S { a: Mutex<u8>, b: Mutex<u8> }
impl S {
    fn f(&self) {
        g(*self.a.lock().unwrap(), *self.b.lock().unwrap());
        h();
    }
}
fn g(_x: u8, _y: u8) {}
fn h() {}
"#;
        let m = model_of(&[("crates/exec/src/s.rs", src)]);
        let f = &m.events[0];
        assert_eq!(f.acquires.len(), 2);
        // Second acquisition sees the first temp held (same statement)…
        assert_eq!(f.acquires[1].held, vec!["exec/s::S.a".to_string()]);
        // …and h() on the next statement holds nothing.
        let h = f.calls.iter().find(|c| c.name == "h").unwrap();
        assert!(h.held.is_empty());
    }
}
