//! A hand-rolled Rust lexer for the `check::sa` source model.
//!
//! The static-analysis passes need exactly four things from a token
//! stream: identifiers with line numbers, single-character punctuation
//! (for brace/paren/bracket depth and `.`/`::` chains), comments (the
//! waiver and protocol annotations live there), and *correctly skipped*
//! string/char literals — a `{` inside a format string must not disturb
//! brace depth, or every downstream scope computation is wrong. That is
//! the entire contract; everything a real compiler's lexer does beyond it
//! (numeric suffix validation, keyword classification, raw identifiers)
//! is deliberately out of scope, in the same zero-dependency in-repo-
//! parser ethos as `check::trace`'s JSON reader.
//!
//! Lifetimes vs char literals use the standard heuristic: after a `'`,
//! an identifier immediately followed by another `'` is a char literal
//! (`'a'`); otherwise it is a lifetime (`'a`). Escaped chars (`'\n'`) and
//! raw strings (`r"…"`, `r#"…"#`, any hash depth) are handled, as both
//! occur in this workspace.

/// One lexical token. Literal contents are dropped (a placeholder kind is
/// kept so token positions stay meaningful); comment text is preserved
/// for the annotation parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the scanner distinguishes by spelling).
    Ident(String),
    /// Single punctuation character: `{ } ( ) [ ] ; : . , # ! < > = &` ….
    Punct(char),
    /// String, char, or numeric literal (contents discarded).
    Literal,
    /// Lifetime marker (`'a`); distinct so it never pairs as a char.
    Lifetime,
    /// A `//` line comment or `/* */` block comment, text included.
    /// `doc` marks `///` / `//!` (and `/** */`) documentation comments,
    /// which the annotation parsers ignore — prose about an annotation
    /// must not arm one.
    Comment {
        /// Full comment text including the leading slashes.
        text: String,
        /// Whether this is a doc comment.
        doc: bool,
    },
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.tok, Tok::Punct(p) if p == c)
    }

    /// Whether this token is a (non-doc or doc) comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.tok, Tok::Comment { .. })
    }
}

/// Lexes `source` into a token stream. Never fails: unrecognized bytes
/// become punctuation tokens, and an unterminated literal or comment
/// simply ends at EOF — the analyses degrade gracefully on malformed
/// input rather than refusing to scan it.
pub fn lex(source: &str) -> Vec<Token> {
    let b = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = source[start..i].to_string();
                let doc = text.starts_with("///") || text.starts_with("//!");
                out.push(Token {
                    tok: Tok::Comment { text, doc },
                    line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = source[start..i].to_string();
                let doc = text.starts_with("/**") || text.starts_with("/*!");
                out.push(Token {
                    tok: Tok::Comment { text, doc },
                    line: start_line,
                });
            }
            b'"' => {
                i = skip_string(b, i + 1, &mut line);
                out.push(Token {
                    tok: Tok::Literal,
                    line,
                });
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string candidate: r"…" or r#"…"# at any hash depth.
                // `r#foo` raw identifiers would be mis-lexed here, but the
                // workspace has none (and the fallback is harmless).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == b'\n' {
                            line += 1;
                        } else if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    out.push(Token {
                        tok: Tok::Literal,
                        line,
                    });
                } else {
                    // Plain identifier starting with `r`.
                    let (tok, next) = lex_ident(source, i);
                    out.push(Token { tok, line });
                    i = next;
                }
            }
            b'\'' => {
                // Char literal vs lifetime.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char literal: '\n', '\'', '\u{…}'.
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    i = (j + 1).min(b.len());
                    out.push(Token {
                        tok: Tok::Literal,
                        line,
                    });
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    // Simple char literal: 'x'.
                    i += 3;
                    out.push(Token {
                        tok: Tok::Literal,
                        line,
                    });
                } else {
                    // Lifetime: skip the identifier after the quote.
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    i = j;
                    out.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let (tok, next) = lex_ident(source, i);
                out.push(Token { tok, line });
                i = next;
            }
            c if c.is_ascii_digit() => {
                // Numeric literal (with `_` separators, suffixes, hex/bin
                // prefixes, float dots followed by digits — the dot of a
                // method call on an integer, `1.max(x)`, stays punctuation).
                let mut j = i;
                while j < b.len()
                    && (b[j].is_ascii_alphanumeric()
                        || b[j] == b'_'
                        || (b[j] == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit()))
                {
                    j += 1;
                }
                i = j;
                out.push(Token {
                    tok: Tok::Literal,
                    line,
                });
            }
            c => {
                out.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn lex_ident(source: &str, start: usize) -> (Tok, usize) {
    let b = source.as_bytes();
    let mut j = start;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    (Tok::Ident(source[start..j].to_string()), j)
}

/// Skips a double-quoted string body starting just past the opening
/// quote; returns the index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn brace_depth_survives_literals() {
        // Braces inside strings and chars must not appear as punctuation.
        let src = "fn f() { let s = \"{{}}\"; let c = '{'; g(); }";
        let toks = lex(src);
        let open = toks.iter().filter(|t| t.is_punct('{')).count();
        let close = toks.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!(open, 1);
        assert_eq!(close, 1);
    }

    #[test]
    fn raw_strings_and_escapes_are_skipped() {
        let src = "let a = r#\"quote \" and { brace\"#; let b = \"esc \\\" {\"; done();";
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.is_punct('{')).count(), 0);
        assert!(idents(src).contains(&"done".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 3);
        // The brace depth is intact (no quote swallowed a brace).
        assert_eq!(toks.iter().filter(|t| t.is_punct('{')).count(), 1);
    }

    #[test]
    fn char_literals_escaped_and_plain() {
        let src = "let a = 'x'; let b = '\\n'; let c = '\\''; end();";
        assert!(idents(src).contains(&"end".to_string()));
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.tok == Tok::Literal).count(),
            3
        );
    }

    #[test]
    fn comments_carry_text_and_doc_flag() {
        let src = "// grbsa: protocol(counter)\n/// doc line\nfn f() {}\n";
        let toks = lex(src);
        let comments: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Comment { text, doc } => Some((text.clone(), *doc, t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].0.contains("protocol(counter)"));
        assert!(!comments[0].1);
        assert_eq!(comments[0].2, 1);
        assert!(comments[1].1, "/// must be flagged as doc");
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "/* a\nb */\nfn f() {\n    g();\n}\n";
        let toks = lex(src);
        let g = toks.iter().find(|t| t.ident() == Some("g")).unwrap();
        assert_eq!(g.line, 4);
    }

    #[test]
    fn numeric_literals_do_not_eat_method_dots() {
        let src = "let x = 1.max(2); let y = 1.5; let z = 0xff_u32;";
        let idents = idents(src);
        assert!(idents.contains(&"max".to_string()));
    }
}
