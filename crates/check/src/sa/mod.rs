//! `grbsa`: source-model static analysis for the workspace's
//! concurrency layer.
//!
//! Where `check::lint` pattern-matches single lines, `sa` builds a small
//! semantic model of the source (declarations, function bodies, call
//! edges, lock and atomic operation sites — see [`model`]) and runs two
//! analyses over it:
//!
//! - [`lockorder`] — a lock-order graph with cycle detection (potential
//!   ABBA deadlocks, reported with `file:line` witness chains) and a
//!   wait-while-holding rule for condvar waits that pin extra locks.
//! - [`atomics`] — an ordering audit that classifies every
//!   `Ordering::Relaxed` site against the declared protocol table and
//!   checks Release/Acquire pairing per declared atomic.
//!
//! Findings are waivable in-source with block-scoped
//! `// grbsa: allow(rule-slug)` comments; `// grbsa: protocol(name)`
//! classifies Relaxed sites. Annotations that sanction nothing are
//! themselves findings (`stale-annotation`), so waivers cannot outlive
//! the code they excuse — the same hygiene `grblint` enforces for its
//! own waivers.
//!
//! The static side is complemented by the dynamic vector-clock race
//! detector in `check::sched`: `sa` sees every path but approximates
//! aliasing; the model checker sees exact aliasing but only explored
//! paths. DESIGN.md §4b maps both onto the paper's thread-safety model.

pub mod atomics;
pub mod lexer;
pub mod lockorder;
pub mod model;

use model::AnnKind;
use std::path::Path;

/// Static-analysis rules. Slugs are the stable names used by
/// `grbsa: allow(...)`, the JSON output, and the docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A cycle in the lock-order graph (potential ABBA deadlock).
    LockOrderCycle,
    /// A condvar wait holding locks other than the guard handed to it.
    WaitWhileHolding,
    /// A `Relaxed` site with no sanctioning protocol.
    RelaxedWithoutProtocol,
    /// A `Relaxed` site whose covering protocol forbids Relaxed.
    ProtocolViolation,
    /// A `grbsa: protocol(...)` naming something not in the table.
    UnknownProtocol,
    /// A Release-or-stronger write never paired with an acquire read.
    UnpairedRelease,
    /// An Acquire-or-stronger read never paired with a release write.
    UnpairedAcquire,
    /// A `grbsa:` annotation that sanctions or waives nothing.
    StaleAnnotation,
}

impl Rule {
    pub fn slug(self) -> &'static str {
        match self {
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::WaitWhileHolding => "wait-while-holding",
            Rule::RelaxedWithoutProtocol => "relaxed-without-protocol",
            Rule::ProtocolViolation => "protocol-violation",
            Rule::UnknownProtocol => "unknown-protocol",
            Rule::UnpairedRelease => "unpaired-release",
            Rule::UnpairedAcquire => "unpaired-acquire",
            Rule::StaleAnnotation => "stale-annotation",
        }
    }

    pub fn all() -> [Rule; 8] {
        [
            Rule::LockOrderCycle,
            Rule::WaitWhileHolding,
            Rule::RelaxedWithoutProtocol,
            Rule::ProtocolViolation,
            Rule::UnknownProtocol,
            Rule::UnpairedRelease,
            Rule::UnpairedAcquire,
            Rule::StaleAnnotation,
        ]
    }

    /// Whether `grbsa: allow(slug)` can waive this rule. Meta-rules about
    /// the annotations themselves cannot be waived — an allow() for a
    /// stale annotation would itself be stale.
    pub fn waivable(self) -> bool {
        !matches!(self, Rule::StaleAnnotation | Rule::UnknownProtocol)
    }

    pub fn from_slug(s: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.slug() == s)
    }
}

/// One finding, with the evidence that produced it.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Primary location (first witness site).
    pub file: String,
    pub line: usize,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Evidence chain: `file:line` entries joined with `"; "`, one per
    /// witnessing edge or site.
    pub witness: String,
    /// Every site the finding rests on — used for waiver matching (an
    /// `allow` covering *any* site waives the finding).
    pub sites: Vec<(String, usize)>,
}

/// A completed analysis run.
pub struct Analysis {
    /// Unwaived findings, sorted by (file, line, slug).
    pub findings: Vec<Finding>,
    /// Findings suppressed by `grbsa: allow(...)` annotations.
    pub waived: usize,
    pub stats: model::Stats,
    pub graph: lockorder::LockGraph,
}

/// Runs every analysis over `(rel_path, source)` pairs.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let mut m = model::build(files);
    let mut ann_used = vec![false; m.annotations.len()];

    let (graph, mut findings) = lockorder::analyze(&m);
    m.stats.calls_resolved = graph.calls_resolved;
    m.stats.calls_skipped = graph.calls_skipped;
    findings.extend(atomics::analyze(&m, &mut ann_used));

    // Apply allow() waivers: a finding is waived when an Allow annotation
    // naming its rule slug covers any of its sites.
    let mut waived = 0usize;
    findings.retain(|f| {
        if !f.rule.waivable() {
            return true;
        }
        for (i, a) in m.annotations.iter().enumerate() {
            if a.kind != AnnKind::Allow {
                continue;
            }
            if !a.names.iter().any(|n| n == f.rule.slug()) {
                continue;
            }
            if f.sites.iter().any(|(file, line)| a.covers(file, *line)) {
                ann_used[i] = true;
                waived += 1;
                return false;
            }
        }
        true
    });

    // Annotation hygiene: unknown allow-rule names, then annotations
    // that matched nothing.
    for (i, a) in m.annotations.iter().enumerate() {
        if a.kind != AnnKind::Allow {
            continue;
        }
        for name in &a.names {
            match Rule::from_slug(name) {
                None => {
                    ann_used[i] = true; // erroneous, report once as unknown
                    findings.push(Finding {
                        rule: Rule::StaleAnnotation,
                        file: a.file.clone(),
                        line: a.line,
                        message: format!(
                            "allow('{}') names no grbsa rule (known: {})",
                            name,
                            Rule::all()
                                .iter()
                                .map(|r| r.slug())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        witness: format!("{}:{}", a.file, a.line),
                        sites: vec![(a.file.clone(), a.line)],
                    });
                }
                Some(r) if !r.waivable() => {
                    ann_used[i] = true;
                    findings.push(Finding {
                        rule: Rule::StaleAnnotation,
                        file: a.file.clone(),
                        line: a.line,
                        message: format!("rule '{}' cannot be waived", name),
                        witness: format!("{}:{}", a.file, a.line),
                        sites: vec![(a.file.clone(), a.line)],
                    });
                }
                Some(_) => {}
            }
        }
    }
    for (i, a) in m.annotations.iter().enumerate() {
        if ann_used[i] {
            continue;
        }
        let what = match a.kind {
            AnnKind::Allow => "waives no finding",
            AnnKind::Protocol => "classifies no Relaxed site",
        };
        findings.push(Finding {
            rule: Rule::StaleAnnotation,
            file: a.file.clone(),
            line: a.line,
            message: format!(
                "stale annotation: `grbsa: {}({})` {} — remove it or fix the scope",
                match a.kind {
                    AnnKind::Allow => "allow",
                    AnnKind::Protocol => "protocol",
                },
                a.names.join(", "),
                what
            ),
            witness: format!("{}:{}", a.file, a.line),
            sites: vec![(a.file.clone(), a.line)],
        });
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.slug()).cmp(&(b.file.as_str(), b.line, b.rule.slug()))
    });
    Analysis {
        findings,
        waived,
        stats: m.stats,
        graph,
    }
}

/// Runs the analysis over the workspace rooted at `root`.
pub fn analyze_root(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    crate::lint::collect_sources(root, &mut files)?;
    let mut srcs = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        srcs.push((rel, source));
    }
    Ok(analyze_sources(&srcs))
}

/// Formats one finding for terminal output.
pub fn render(f: &Finding) -> String {
    format!(
        "{}:{}: [{}] {}\n    witness: {}",
        f.file,
        f.line,
        f.rule.slug(),
        f.message,
        f.witness
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Analysis {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(r, s)| (r.to_string(), s.to_string()))
            .collect();
        analyze_sources(&owned)
    }

    const INVERSION: &str = r#"
use std::sync::Mutex;
struct P { a: Mutex<u8>, b: Mutex<u8> }
impl P {
    fn ab(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }
    fn ba(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }
}
"#;

    #[test]
    fn lock_inversion_is_detected_with_witness_chain() {
        let an = run(&[("crates/exec/src/p.rs", INVERSION)]);
        let cycles: Vec<_> = an
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LockOrderCycle)
            .collect();
        assert_eq!(cycles.len(), 1, "exactly one cycle finding per SCC");
        let c = cycles[0];
        assert!(c.message.contains("exec/p::P.a"));
        assert!(c.message.contains("exec/p::P.b"));
        // The witness names both acquisition sites as file:line.
        assert!(c.witness.contains("crates/exec/src/p.rs:7"));
        assert!(c.witness.contains("crates/exec/src/p.rs:13"));
    }

    #[test]
    fn allow_waives_and_counts() {
        let src = INVERSION.replace(
            "fn ab(&self) {",
            "fn ab(&self) {\n        // grbsa: allow(lock-order-cycle)",
        );
        let an = run(&[("crates/exec/src/p.rs", &src)]);
        assert!(
            an.findings.iter().all(|f| f.rule != Rule::LockOrderCycle),
            "waiver covering one site suppresses the cycle"
        );
        assert_eq!(an.waived, 1);
        assert!(
            an.findings.iter().all(|f| f.rule != Rule::StaleAnnotation),
            "a waiver that fired is not stale"
        );
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// grbsa: allow(lock-order-cycle)\nfn quiet() {}\n";
        let an = run(&[("crates/exec/src/q.rs", src)]);
        assert_eq!(an.findings.len(), 1);
        assert_eq!(an.findings[0].rule, Rule::StaleAnnotation);
        assert!(an.findings[0].message.contains("waives no finding"));
    }

    #[test]
    fn unknown_allow_rule_is_reported() {
        let src = "// grbsa: allow(no-such-rule)\nfn quiet() {}\n";
        let an = run(&[("crates/exec/src/q.rs", src)]);
        assert_eq!(an.findings.len(), 1);
        assert!(an.findings[0].message.contains("names no grbsa rule"));
    }

    #[test]
    fn interprocedural_inversion_is_detected() {
        let src = r#"
use std::sync::Mutex;
struct P { a: Mutex<u8>, b: Mutex<u8> }
impl P {
    fn outer(&self) {
        let ga = self.a.lock().unwrap();
        self.grab_b();
        drop(ga);
    }
    fn grab_b(&self) {
        let gb = self.b.lock().unwrap();
        drop(gb);
    }
    fn other(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }
}
"#;
        let an = run(&[("crates/exec/src/p.rs", src)]);
        let cycle = an
            .findings
            .iter()
            .find(|f| f.rule == Rule::LockOrderCycle)
            .expect("a->b via call, b->a direct: cycle");
        assert!(
            cycle.witness.contains("via P::grab_b"),
            "interprocedural edge names its call chain, got: {}",
            cycle.witness
        );
    }

    #[test]
    fn relaxed_publish_protocol_violation() {
        let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
static HEAD: AtomicUsize = AtomicUsize::new(0);
fn publish(v: usize) {
    // grbsa: protocol(publish)
    HEAD.store(v, Ordering::Relaxed);
}
fn consume() -> usize {
    HEAD.load(Ordering::Acquire)
}
"#;
        let an = run(&[("crates/exec/src/h.rs", src)]);
        assert!(
            an.findings.iter().any(|f| f.rule == Rule::ProtocolViolation),
            "publish protocol forbids Relaxed"
        );
    }

    #[test]
    fn unpaired_release_is_detected() {
        let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
static FLAG: AtomicUsize = AtomicUsize::new(0);
fn set() {
    FLAG.store(1, Ordering::Release);
}
fn get() -> usize {
    // grbsa: protocol(mode-flag)
    FLAG.load(Ordering::Relaxed)
}
"#;
        let an = run(&[("crates/exec/src/f.rs", src)]);
        assert!(
            an.findings.iter().any(|f| f.rule == Rule::UnpairedRelease),
            "release store with only relaxed loads is one-sided"
        );
    }

    #[test]
    fn clean_paired_publish_has_no_findings() {
        let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
static HEAD: AtomicUsize = AtomicUsize::new(0);
fn publish(v: usize) {
    HEAD.store(v, Ordering::Release);
}
fn consume() -> usize {
    HEAD.load(Ordering::Acquire)
}
"#;
        let an = run(&[("crates/exec/src/h.rs", src)]);
        assert!(an.findings.is_empty(), "got: {:?}", an.findings);
    }
}
