//! Lock-order graph extraction and potential-deadlock detection.
//!
//! Nodes are declared locks (`crate/file::Owner.field`); a directed edge
//! `A -> B` means some execution path acquires `B` while holding `A`.
//! Edges come from two sources:
//!
//! 1. **Direct nesting**: an acquisition event whose held-set is
//!    non-empty contributes one edge per held lock.
//! 2. **Interprocedural nesting**: a call made while holding `A` to a
//!    function whose summary (fixpoint over the call graph) may acquire
//!    `B` contributes `A -> B` with the call chain in the witness.
//!
//! A cycle in this graph is a potential ABBA deadlock; each strongly
//! connected component yields one `lock-order-cycle` finding whose
//! witness lists a concrete `file:line` chain, one line per edge. A
//! condvar wait performed while holding any lock *other than* the one
//! whose guard is handed to `wait` yields a `wait-while-holding`
//! finding — the extra lock stays held for the full (unbounded) wait,
//! which is the classic lost-resource shape even when no cycle exists.
//!
//! Call resolution is deliberately conservative (see `model`): a call
//! that cannot be resolved unambiguously contributes nothing. That can
//! miss real edges — this is a bug-finder with a vector-clock dynamic
//! detector (`check::sched`) covering what static ambiguity hides — but
//! it never invents an edge between unrelated locks.

use super::model::{CallSite, Model};
use super::{Finding, Rule};
use std::collections::{HashMap, HashSet};

/// One witnessed edge in the lock-order graph.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    /// Function whose body witnesses the edge.
    pub in_fn: String,
    /// Call chain for interprocedural edges (`caller -> callee -> …`).
    pub via: Vec<String>,
}

/// The extracted graph, exposed for `grbsa --verbose`.
#[derive(Debug, Default)]
pub struct LockGraph {
    pub edges: Vec<Edge>,
    pub calls_resolved: usize,
    pub calls_skipped: usize,
}

/// Per-function may-acquire summary: lock id -> first witness
/// (file, line, call chain from this fn to the acquiring fn).
type Summary = HashMap<String, (String, usize, Vec<String>)>;

/// Resolves a call site to a function index, or `None` when ambiguous.
fn resolve_call(
    model: &Model,
    caller: usize,
    site: &CallSite,
    by_name: &HashMap<&str, Vec<usize>>,
    by_qual: &HashMap<(String, String), usize>,
) -> Option<usize> {
    if site.is_self {
        if let Some(t) = &model.fns[caller].impl_type {
            if let Some(&idx) = by_qual.get(&(t.clone(), site.name.clone())) {
                return Some(idx);
            }
        }
    }
    if super::model::method_denylisted(&site.name) {
        return None;
    }
    match by_name.get(site.name.as_str()) {
        Some(c) if c.len() == 1 => Some(c[0]),
        _ => None,
    }
}

/// Builds the lock-order graph from the model.
pub fn build_graph(model: &Model) -> LockGraph {
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_qual: HashMap<(String, String), usize> = HashMap::new();
    for (i, f) in model.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
        if let Some(t) = &f.impl_type {
            by_qual.insert((t.clone(), f.name.clone()), i);
        }
    }

    // Fixpoint over may-acquire summaries.
    let mut summaries: Vec<Summary> = model
        .events
        .iter()
        .map(|ev| {
            let mut s = Summary::new();
            for a in &ev.acquires {
                s.entry(a.lock.clone())
                    .or_insert_with(|| (String::new(), a.line, Vec::new()));
            }
            s
        })
        .collect();
    // Direct witnesses carry their own file.
    for (i, s) in summaries.iter_mut().enumerate() {
        for v in s.values_mut() {
            v.0 = model.fns[i].file.clone();
        }
    }
    let mut resolved_count = 0usize;
    let mut skipped = 0usize;
    // Pre-resolve call targets once.
    let resolved: Vec<Vec<(usize, usize)>> = model
        .events
        .iter()
        .enumerate()
        .map(|(i, ev)| {
            ev.calls
                .iter()
                .filter_map(|c| {
                    match resolve_call(model, i, c, &by_name, &by_qual) {
                        Some(t) => {
                            resolved_count += 1;
                            Some((t, c.line))
                        }
                        None => {
                            skipped += 1;
                            None
                        }
                    }
                })
                .collect()
        })
        .collect();
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds <= model.fns.len() + 1 {
        changed = false;
        rounds += 1;
        for i in 0..model.fns.len() {
            for &(callee, line) in &resolved[i] {
                if callee == i {
                    continue;
                }
                let additions: Vec<(String, (String, usize, Vec<String>))> = summaries[callee]
                    .iter()
                    .filter(|(lock, _)| !summaries[i].contains_key(*lock))
                    .map(|(lock, w)| {
                        let mut via = vec![model.fns[callee].qual.clone()];
                        via.extend(w.2.iter().cloned());
                        (lock.clone(), (model.fns[i].file.clone(), line, via))
                    })
                    .collect();
                if !additions.is_empty() {
                    changed = true;
                    summaries[i].extend(additions);
                }
            }
        }
    }

    // Edges.
    let mut graph = LockGraph {
        calls_resolved: resolved_count,
        calls_skipped: skipped,
        ..Default::default()
    };
    let mut seen: HashSet<(String, String)> = HashSet::new();
    for (i, ev) in model.events.iter().enumerate() {
        for a in &ev.acquires {
            for h in &a.held {
                if seen.insert((h.clone(), a.lock.clone())) {
                    graph.edges.push(Edge {
                        from: h.clone(),
                        to: a.lock.clone(),
                        file: model.fns[i].file.clone(),
                        line: a.line,
                        in_fn: model.fns[i].qual.clone(),
                        via: Vec::new(),
                    });
                }
            }
        }
        for (ci, c) in ev.calls.iter().enumerate() {
            if c.held.is_empty() {
                continue;
            }
            let Some(&(callee, line)) = resolved_for(&resolved[i], ci, c) else {
                continue;
            };
            for (lock, w) in &summaries[callee] {
                for h in &c.held {
                    if h == lock {
                        continue;
                    }
                    if seen.insert((h.clone(), lock.clone())) {
                        let mut via = vec![model.fns[callee].qual.clone()];
                        via.extend(w.2.iter().cloned());
                        graph.edges.push(Edge {
                            from: h.clone(),
                            to: lock.clone(),
                            file: model.fns[i].file.clone(),
                            line,
                            in_fn: model.fns[i].qual.clone(),
                            via,
                        });
                    }
                }
            }
        }
    }
    graph
}

/// Looks up the pre-resolved target for the `ci`-th call of a function.
/// The resolved list is filtered, so match on the recorded line.
fn resolved_for<'a>(
    resolved: &'a [(usize, usize)],
    _ci: usize,
    c: &CallSite,
) -> Option<&'a (usize, usize)> {
    resolved.iter().find(|(_, line)| *line == c.line)
}

/// Runs cycle detection and the wait-while-holding rule, returning
/// findings (unwaived filtering happens in the caller).
pub fn analyze(model: &Model) -> (LockGraph, Vec<Finding>) {
    let graph = build_graph(model);
    let mut findings = Vec::new();

    // Adjacency over lock ids.
    let mut adj: HashMap<&str, Vec<&Edge>> = HashMap::new();
    for e in &graph.edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }

    // SCCs via iterative DFS (Tarjan). Small graphs; recursion depth is
    // bounded anyway, but iterative keeps pathological fixtures safe.
    let nodes: Vec<&str> = {
        let mut set: Vec<&str> = graph
            .edges
            .iter()
            .flat_map(|e| [e.from.as_str(), e.to.as_str()])
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    };
    let sccs = tarjan(&nodes, &adj);

    let mut reported: HashSet<usize> = HashSet::new();
    for (scc_idx, scc) in sccs.iter().enumerate() {
        let in_scc: HashSet<&str> = scc.iter().copied().collect();
        let cyclic = scc.len() > 1
            || adj
                .get(scc[0])
                .map(|es| es.iter().any(|e| e.to == scc[0]))
                .unwrap_or(false);
        if !cyclic || reported.contains(&scc_idx) {
            continue;
        }
        reported.insert(scc_idx);
        // Reconstruct one concrete cycle: walk from the first node
        // through in-SCC edges back to the start.
        let cycle = cycle_path(scc[0], &in_scc, &adj);
        let mut chain: Vec<String> = cycle.iter().map(|e| e.from.clone()).collect();
        chain.push(cycle.last().map(|e| e.to.clone()).unwrap_or_default());
        let witness: Vec<String> = cycle
            .iter()
            .map(|e| {
                let via = if e.via.is_empty() {
                    String::new()
                } else {
                    format!(" via {}", e.via.join(" -> "))
                };
                format!(
                    "{}:{}: {} acquired while holding {} (in {}{})",
                    e.file, e.line, e.to, e.from, e.in_fn, via
                )
            })
            .collect();
        let first = &cycle[0];
        findings.push(Finding {
            rule: Rule::LockOrderCycle,
            file: first.file.clone(),
            line: first.line,
            message: format!("potential deadlock cycle: {}", chain.join(" -> ")),
            witness: witness.join("; "),
            sites: cycle.iter().map(|e| (e.file.clone(), e.line)).collect(),
        });
    }

    for (i, ev) in model.events.iter().enumerate() {
        for w in &ev.waits {
            if w.held_other.is_empty() {
                continue;
            }
            findings.push(Finding {
                rule: Rule::WaitWhileHolding,
                file: model.fns[i].file.clone(),
                line: w.line,
                message: format!(
                    "condvar wait on {} while still holding {} (in {}): the held lock blocks \
                     its other users for the full wait",
                    w.condvar,
                    w.held_other.join(", "),
                    model.fns[i].qual
                ),
                witness: format!("{}:{}", model.fns[i].file, w.line),
                sites: vec![(model.fns[i].file.clone(), w.line)],
            });
        }
    }
    (graph, findings)
}

/// Walks a concrete cycle starting and ending at `start`, restricted to
/// SCC-internal edges. BFS over edges guarantees a shortest witness.
fn cycle_path<'a>(
    start: &str,
    in_scc: &HashSet<&str>,
    adj: &HashMap<&str, Vec<&'a Edge>>,
) -> Vec<&'a Edge> {
    // BFS from start back to start.
    let mut prev: HashMap<&str, &Edge> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for e in adj.get(n).into_iter().flatten() {
            if !in_scc.contains(e.to.as_str()) {
                continue;
            }
            if e.to == start {
                // Found the closing edge; unwind.
                let mut path = vec![*e];
                let mut cur = n;
                while cur != start {
                    let pe = prev[cur];
                    path.push(pe);
                    cur = pe.from.as_str();
                }
                path.reverse();
                return path;
            }
            if !prev.contains_key(e.to.as_str()) && e.to != start {
                prev.insert(e.to.as_str(), e);
                queue.push_back(e.to.as_str());
            }
        }
    }
    Vec::new()
}

/// Iterative Tarjan SCC over string node ids.
fn tarjan<'a>(nodes: &[&'a str], adj: &HashMap<&str, Vec<&Edge>>) -> Vec<Vec<&'a str>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let idx_of: HashMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let succ: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| {
            adj.get(*n)
                .into_iter()
                .flatten()
                .filter_map(|e| idx_of.get(e.to.as_str()).copied())
                .collect()
        })
        .collect();
    let mut state = vec![NodeState::default(); nodes.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<&str>> = Vec::new();
    for root in 0..nodes.len() {
        if state[root].index.is_some() {
            continue;
        }
        // Explicit DFS frame: (node, next successor position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                state[v].index = Some(next_index);
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if let Some(&w) = succ[v].get(*pos) {
                *pos += 1;
                if state[w].index.is_none() {
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap_or(0));
                }
            } else {
                frames.pop();
                if state[v].lowlink == state[v].index.unwrap_or(0) {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        state[w].on_stack = false;
                        comp.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
                if let Some(&(p, _)) = frames.last() {
                    state[p].lowlink = state[p].lowlink.min(state[v].lowlink);
                }
            }
        }
    }
    sccs
}
