//! Atomics-ordering audit: classifies every `Ordering::*` site against
//! the declared publish/consume protocol table.
//!
//! ## The protocol table
//!
//! | protocol       | Relaxed? | meaning                                              |
//! |----------------|----------|------------------------------------------------------|
//! | `counter`      | yes      | monotonic telemetry counter; readers tolerate staleness |
//! | `counter-reset`| yes      | test-isolation reset of telemetry state; single-threaded harness points |
//! | `mode-flag`    | yes      | advisory on/off toggle; acting on a stale value is harmless |
//! | `id-alloc`     | yes      | uniqueness-only ID allocation; no data published     |
//! | `scope-joined` | yes      | happens-before supplied externally (pool scope join / thread join) |
//! | `publish`      | no       | cross-thread data publication: writes must be Release+, reads Acquire+ |
//!
//! ## Rules
//!
//! - `relaxed-without-protocol`: a `Relaxed` site must be sanctioned.
//!   Two sanctions exist without an annotation: (a) the site is in
//!   `crates/obs` and the operation is a counter-shaped RMW or a load —
//!   the blanket "obs counters and fast paths" clause from the protocol
//!   design; (b) the site also names a stronger ordering (the
//!   `compare_exchange(…, AcqRel, Relaxed)` failure-ordering idiom).
//!   Everything else needs a block-scoped `// grbsa: protocol(name)`.
//! - `protocol-violation`: an annotation names a protocol that does not
//!   sanction Relaxed (today: `publish`).
//! - `unknown-protocol`: an annotation names something not in the table.
//! - `unpaired-release` / `unpaired-acquire`: for each *declared* atomic
//!   (receivers resolved by the model; locals are skipped), a
//!   Release/AcqRel/SeqCst write with no Acquire/AcqRel/SeqCst read
//!   anywhere in non-test code — or vice versa — is a one-sided
//!   publication protocol: the other side reads (or writes) without the
//!   ordering that makes the handoff visible.

use super::model::{AtomicSite, Model};
use super::{Finding, Rule};
use std::collections::HashMap;

/// `(name, sanctions_relaxed)` rows of the protocol table.
pub const PROTOCOLS: &[(&str, bool)] = &[
    ("counter", true),
    ("counter-reset", true),
    ("mode-flag", true),
    ("id-alloc", true),
    ("scope-joined", true),
    ("publish", false),
];

fn protocol_relaxed_ok(name: &str) -> Option<bool> {
    PROTOCOLS.iter().find(|(n, _)| *n == name).map(|(_, ok)| *ok)
}

/// Counter-shaped operations sanctioned as Relaxed inside `crates/obs`
/// without an annotation: monotonic bumps and the loads that read them.
/// Stores (flag toggles, resets) always need a protocol annotation, even
/// in obs — they are the sites where a missing ordering could hide a
/// real publication.
const OBS_BLANKET_OPS: &[&str] = &[
    "load", "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor", "fetch_max",
    "fetch_min", "fetch_update",
];

fn is_write_op(op: &str) -> bool {
    op != "load"
}

fn is_read_op(op: &str) -> bool {
    op != "store"
}

fn acquires(ord: &str) -> bool {
    matches!(ord, "Acquire" | "AcqRel" | "SeqCst")
}

fn releases(ord: &str) -> bool {
    matches!(ord, "Release" | "AcqRel" | "SeqCst")
}

/// Runs the audit. `ann_used` is indexed parallel to `model.annotations`
/// and is set for every annotation that classified a site (stale
/// detection consumes it afterwards).
pub fn analyze(model: &Model, ann_used: &mut [bool]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Unknown protocol names are reported once per annotation, whether
    // or not the annotation ever matches a site.
    for (i, a) in model.annotations.iter().enumerate() {
        if a.kind != super::model::AnnKind::Protocol {
            continue;
        }
        for name in &a.names {
            if protocol_relaxed_ok(name).is_none() {
                ann_used[i] = true; // erroneous, not stale: one finding only
                findings.push(Finding {
                    rule: Rule::UnknownProtocol,
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "protocol '{}' is not in the table ({})",
                        name,
                        PROTOCOLS
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    witness: format!("{}:{}", a.file, a.line),
                    sites: vec![(a.file.clone(), a.line)],
                });
            }
        }
    }

    // Relaxed-site classification.
    for site in &model.atomic_sites {
        let relaxed = site.orderings.iter().any(|o| o == "Relaxed");
        if !relaxed {
            continue;
        }
        // Failure-ordering idiom: Relaxed alongside a stronger ordering.
        if site.orderings.iter().any(|o| o != "Relaxed") {
            continue;
        }
        // Obs counter blanket.
        if site.krate == "obs" && OBS_BLANKET_OPS.contains(&site.op.as_str()) {
            continue;
        }
        // Covered by a protocol annotation?
        let covering: Vec<usize> = model
            .annotations
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.kind == super::model::AnnKind::Protocol && a.covers(&site.file, site.line)
            })
            .map(|(i, _)| i)
            .collect();
        if covering.is_empty() {
            findings.push(Finding {
                rule: Rule::RelaxedWithoutProtocol,
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "Relaxed {} on {} has no protocol: annotate with \
                     `// grbsa: protocol(<name>)` or strengthen the ordering",
                    site.op,
                    site_name(site)
                ),
                witness: format!("{}:{}", site.file, site.line),
                sites: vec![(site.file.clone(), site.line)],
            });
            continue;
        }
        let mut sanctioned = false;
        for i in covering {
            ann_used[i] = true;
            for name in &model.annotations[i].names {
                match protocol_relaxed_ok(name) {
                    Some(true) => sanctioned = true,
                    Some(false) => findings.push(Finding {
                        rule: Rule::ProtocolViolation,
                        file: site.file.clone(),
                        line: site.line,
                        message: format!(
                            "protocol '{}' does not sanction Relaxed: {} on {} must use \
                             Release/Acquire (or stronger)",
                            name,
                            site.op,
                            site_name(site)
                        ),
                        witness: format!("{}:{}", site.file, site.line),
                        sites: vec![(site.file.clone(), site.line)],
                    }),
                    None => {} // already reported as unknown-protocol
                }
            }
        }
        let _ = sanctioned;
    }

    // Release/Acquire pairing per declared atomic.
    let mut by_atomic: HashMap<&str, Vec<&AtomicSite>> = HashMap::new();
    for site in &model.atomic_sites {
        if let Some(id) = &site.atomic {
            by_atomic.entry(id.as_str()).or_default().push(site);
        }
    }
    let mut atomics: Vec<&&str> = by_atomic.keys().collect::<Vec<_>>();
    atomics.sort_unstable();
    for id in atomics {
        let sites = &by_atomic[*id];
        let release_writes: Vec<&&AtomicSite> = sites
            .iter()
            .filter(|s| is_write_op(&s.op) && s.orderings.iter().any(|o| releases(o)))
            .collect();
        let acquire_reads: Vec<&&AtomicSite> = sites
            .iter()
            .filter(|s| is_read_op(&s.op) && s.orderings.iter().any(|o| acquires(o)))
            .collect();
        if !release_writes.is_empty() && acquire_reads.is_empty() {
            let w = release_writes[0];
            findings.push(Finding {
                rule: Rule::UnpairedRelease,
                file: w.file.clone(),
                line: w.line,
                message: format!(
                    "{} is published with {} ordering but never read with Acquire or \
                     stronger: the release has no pairing acquire, so the handoff \
                     synchronizes nothing",
                    id,
                    w.orderings.join("/")
                ),
                witness: release_writes
                    .iter()
                    .map(|s| format!("{}:{}", s.file, s.line))
                    .collect::<Vec<_>>()
                    .join("; "),
                sites: release_writes
                    .iter()
                    .map(|s| (s.file.clone(), s.line))
                    .collect(),
            });
        }
        if !acquire_reads.is_empty() && release_writes.is_empty() {
            // Only meaningful when something writes the atomic at all —
            // an acquire load of a never-written (const-init) atomic is
            // just over-strong, not broken, but still worth flagging as
            // the write side may simply be missing from non-test code.
            let has_writes = sites.iter().any(|s| is_write_op(&s.op));
            if has_writes {
                let r = acquire_reads[0];
                findings.push(Finding {
                    rule: Rule::UnpairedAcquire,
                    file: r.file.clone(),
                    line: r.line,
                    message: format!(
                        "{} is read with {} ordering but every write is weaker than \
                         Release: the acquire has nothing to pair with",
                        id,
                        r.orderings.join("/")
                    ),
                    witness: acquire_reads
                        .iter()
                        .map(|s| format!("{}:{}", s.file, s.line))
                        .collect::<Vec<_>>()
                        .join("; "),
                    sites: acquire_reads
                        .iter()
                        .map(|s| (s.file.clone(), s.line))
                        .collect(),
                });
            }
        }
    }

    findings
}

fn site_name(site: &AtomicSite) -> String {
    site.atomic
        .clone()
        .unwrap_or_else(|| format!("`{}` (undeclared/local)", site.recv))
}
