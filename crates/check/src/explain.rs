//! Independent reader for `GRB_EXPLAIN` decision-provenance exports.
//!
//! `graphblas_obs::events` serializes the reason-coded decision history as
//! `graphblas-obs/explain/v1` JSON. This module is the checking side of
//! that contract, behind the `grbexplain` binary: it re-parses the export
//! with the zero-dependency JSON parser from [`crate::trace`] (sharing no
//! code with the writer), re-checks the structural invariants the
//! exporter promises, renders a per-operation narrative with per-reason
//! aggregates, and evaluates `--assert reason=<code>,min=<k>` gates for
//! `scripts/check.sh`.
//!
//! Structural invariants checked by [`parse`]:
//!
//! * the document carries `schema: "graphblas-obs/explain/v1"` and
//!   numeric `total` / `retained`;
//! * `retained` equals the length of the `events` array, and `total` is
//!   at least `retained` (the excess was ring-overwritten);
//! * every event has `seq`, a known `reason` code, `op`, `ctx`, `thread`,
//!   `t_us`; `seq` is strictly increasing across the array (the global
//!   total order the per-thread rings promise to reconstruct);
//! * the `reasons` aggregate block covers every known code and each
//!   count is at least the number of retained events with that code
//!   (lifetime counts survive ring truncation, so ≥, not ==).

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::{self, TraceError, Value};

/// The schema string the v1 exporter writes.
pub const SCHEMA: &str = "graphblas-obs/explain/v1";

/// Every reason code the v1 exporter can emit, mirrored from
/// `graphblas_obs::events::Reason` (kept as literals so the checker
/// cannot inherit a writer-side rename silently).
pub const REASON_CODES: [&str; 18] = [
    "direction-push",
    "direction-pull",
    "workspace-hit",
    "workspace-miss",
    "workspace-trim",
    "fuse-flush",
    "opaque-drain",
    "convert-csr",
    "convert-sparse",
    "transpose-build",
    "transpose-hit",
    "kernel-path",
    "error-raised",
    "error-deferred",
    "dispatch-pick",
    "format-pick",
    "dag-fuse",
    "dag-force",
];

/// Assert-spec aliases: a family name that expands to several codes whose
/// counts are summed. `direction-pick` is "the dispatcher ran at all",
/// regardless of which way it went.
pub const ALIASES: [(&str, &[&str]); 4] = [
    ("direction-pick", &["direction-push", "direction-pull"]),
    ("workspace-checkout", &["workspace-hit", "workspace-miss"]),
    ("fuse", &["fuse-flush"]),
    ("dag", &["dag-fuse", "dag-force"]),
];

/// The codes an assert spec's reason expands to: the alias expansion, or
/// the code itself when it is a known literal code.
pub fn expand_reason(name: &str) -> Option<Vec<&'static str>> {
    for (alias, codes) in ALIASES {
        if alias == name {
            return Some(codes.to_vec());
        }
    }
    REASON_CODES
        .iter()
        .find(|&&c| c == name)
        .map(|&c| vec![c])
}

/// One decision event as read back from the export.
#[derive(Debug, Clone)]
pub struct EventRec {
    pub seq: u64,
    pub reason: String,
    pub op: String,
    pub ctx: u64,
    pub thread: String,
    pub t_us: u64,
    /// The free-form detail string, when present ("memoized",
    /// "queue-end", a workspace TypeId, …).
    pub detail: Option<String>,
    /// Named numeric payload, in document order (`frontier_nnz`,
    /// `chain_len`, …).
    pub args: Vec<(String, u64)>,
}

/// A parsed, structurally validated explain document.
#[derive(Debug, Clone)]
pub struct ExplainDoc {
    /// Decisions ever recorded process-wide.
    pub total: u64,
    /// Per-reason lifetime aggregates from the `reasons` block.
    pub reasons: Vec<(String, u64)>,
    /// The retained events, oldest first.
    pub events: Vec<EventRec>,
}

impl ExplainDoc {
    /// The aggregate count for one literal reason code.
    pub fn count(&self, code: &str) -> u64 {
        self.reasons
            .iter()
            .find(|(c, _)| c == code)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// The summed aggregate count for a code or alias.
    pub fn count_expanded(&self, name: &str) -> Option<u64> {
        expand_reason(name).map(|codes| codes.iter().map(|c| self.count(c)).sum())
    }
}

/// Why an explain document failed validation or an assert failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplainError {
    /// The document is not valid JSON (position from the shared parser).
    Json { pos: usize, what: String },
    /// The document parsed but violates the explain/v1 structure.
    Structure(String),
    /// An `--assert` gate did not hold.
    Assert(String),
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::Json { pos, what } => write!(f, "invalid JSON at byte {pos}: {what}"),
            ExplainError::Structure(s) => write!(f, "not an explain/v1 document: {s}"),
            ExplainError::Assert(s) => write!(f, "assert failed: {s}"),
        }
    }
}

impl From<TraceError> for ExplainError {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Json { pos, what } => ExplainError::Json { pos, what },
            other => ExplainError::Structure(other.to_string()),
        }
    }
}

fn get_num(obj: &Value, key: &str, what: &str) -> Result<u64, ExplainError> {
    obj.get(key)
        .and_then(Value::as_num)
        .map(|n| n as u64)
        .ok_or_else(|| ExplainError::Structure(format!("{what}: missing numeric \"{key}\"")))
}

fn get_str<'a>(obj: &'a Value, key: &str, what: &str) -> Result<&'a str, ExplainError> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ExplainError::Structure(format!("{what}: missing string \"{key}\"")))
}

/// Parses and structurally validates an explain/v1 export.
pub fn parse(text: &str) -> Result<ExplainDoc, ExplainError> {
    let doc = trace::parse_json(text)?;
    let schema = get_str(&doc, "schema", "document")?;
    if schema != SCHEMA {
        return Err(ExplainError::Structure(format!(
            "schema is \"{schema}\", expected \"{SCHEMA}\""
        )));
    }
    let total = get_num(&doc, "total", "document")?;
    let retained = get_num(&doc, "retained", "document")?;

    let Some(Value::Obj(reason_members)) = doc.get("reasons") else {
        return Err(ExplainError::Structure(
            "missing \"reasons\" object".to_string(),
        ));
    };
    let mut reasons = Vec::new();
    for (code, v) in reason_members {
        let n = v.as_num().ok_or_else(|| {
            ExplainError::Structure(format!("reasons[\"{code}\"] is not a number"))
        })?;
        reasons.push((code.clone(), n as u64));
    }
    for code in REASON_CODES {
        if !reasons.iter().any(|(c, _)| c == code) {
            return Err(ExplainError::Structure(format!(
                "reasons block is missing code \"{code}\""
            )));
        }
    }

    let Some(Value::Arr(raw_events)) = doc.get("events") else {
        return Err(ExplainError::Structure(
            "missing \"events\" array".to_string(),
        ));
    };
    if retained != raw_events.len() as u64 {
        return Err(ExplainError::Structure(format!(
            "retained is {retained} but the events array holds {}",
            raw_events.len()
        )));
    }
    if total < retained {
        return Err(ExplainError::Structure(format!(
            "total {total} < retained {retained}"
        )));
    }

    let mut events = Vec::with_capacity(raw_events.len());
    let mut last_seq = 0u64;
    for (i, ev) in raw_events.iter().enumerate() {
        let what = format!("events[{i}]");
        let seq = get_num(ev, "seq", &what)?;
        if seq <= last_seq {
            return Err(ExplainError::Structure(format!(
                "{what}: seq {seq} does not increase over {last_seq}"
            )));
        }
        last_seq = seq;
        let reason = get_str(ev, "reason", &what)?.to_string();
        if !REASON_CODES.contains(&reason.as_str()) {
            return Err(ExplainError::Structure(format!(
                "{what}: unknown reason code \"{reason}\""
            )));
        }
        let op = get_str(ev, "op", &what)?.to_string();
        let ctx = get_num(ev, "ctx", &what)?;
        let thread = get_str(ev, "thread", &what)?.to_string();
        let t_us = get_num(ev, "t_us", &what)?;
        let detail = ev.get("detail").and_then(Value::as_str).map(str::to_owned);
        let mut args = Vec::new();
        if let Value::Obj(members) = ev {
            for (k, v) in members {
                if matches!(
                    k.as_str(),
                    "seq" | "reason" | "op" | "ctx" | "thread" | "t_us" | "detail"
                ) {
                    continue;
                }
                if let Some(n) = v.as_num() {
                    args.push((k.clone(), n as u64));
                }
            }
        }
        events.push(EventRec {
            seq,
            reason,
            op,
            ctx,
            thread,
            t_us,
            detail,
            args,
        });
    }

    // Lifetime aggregates must be able to account for everything retained.
    for code in REASON_CODES {
        let retained_count = events.iter().filter(|e| e.reason == code).count() as u64;
        let claimed = reasons
            .iter()
            .find(|(c, _)| c == code)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if claimed < retained_count {
            return Err(ExplainError::Structure(format!(
                "reasons[\"{code}\"] claims {claimed} but {retained_count} events are retained"
            )));
        }
    }

    Ok(ExplainDoc {
        total,
        reasons,
        events,
    })
}

/// One `--assert reason=<code>,min=<k>` gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Assert {
    /// A reason code or alias (`direction-pick`, `workspace-checkout`,
    /// `fuse`).
    pub reason: String,
    pub min: u64,
}

impl Assert {
    /// Parses the `reason=<code>,min=<k>` spec syntax.
    pub fn parse(spec: &str) -> Result<Assert, String> {
        let mut reason = None;
        let mut min = None;
        for part in spec.split(',') {
            match part.split_once('=') {
                Some(("reason", v)) if !v.is_empty() => reason = Some(v.to_string()),
                Some(("min", v)) => {
                    min = Some(v.parse::<u64>().map_err(|_| {
                        format!("bad assert spec \"{spec}\": min \"{v}\" is not a number")
                    })?)
                }
                _ => return Err(format!("bad assert spec \"{spec}\": unknown part \"{part}\"")),
            }
        }
        let reason =
            reason.ok_or_else(|| format!("bad assert spec \"{spec}\": missing reason="))?;
        if expand_reason(&reason).is_none() {
            return Err(format!(
                "bad assert spec \"{spec}\": unknown reason \"{reason}\" (codes: {}; aliases: {})",
                REASON_CODES.join(", "),
                ALIASES
                    .iter()
                    .map(|(a, _)| *a)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        Ok(Assert {
            reason,
            min: min.unwrap_or(1),
        })
    }

    /// Evaluates the gate against a parsed document.
    pub fn check(&self, doc: &ExplainDoc) -> Result<u64, ExplainError> {
        let got = doc
            .count_expanded(&self.reason)
            .expect("Assert::parse validated the reason");
        if got < self.min {
            Err(ExplainError::Assert(format!(
                "reason {} has count {got}, need at least {}",
                self.reason, self.min
            )))
        } else {
            Ok(got)
        }
    }
}

/// Renders the per-operation narrative plus per-reason aggregates the
/// `grbexplain` binary prints. `last_n` bounds the narrated events (the
/// newest are kept; aggregates always cover the whole document).
pub fn render(doc: &ExplainDoc, last_n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "explain: {} decisions recorded, {} retained\n",
        doc.total,
        doc.events.len()
    ));

    out.push_str("\nper-reason aggregates (lifetime):\n");
    for (code, n) in &doc.reasons {
        if *n > 0 {
            out.push_str(&format!("  {code:<18} {n}\n"));
        }
    }

    // Per-operation rollup over the retained history.
    let mut by_op: BTreeMap<&str, BTreeMap<&str, u64>> = BTreeMap::new();
    for ev in &doc.events {
        *by_op
            .entry(ev.op.as_str())
            .or_default()
            .entry(ev.reason.as_str())
            .or_default() += 1;
    }
    if !by_op.is_empty() {
        out.push_str("\nper-operation (retained):\n");
        for (op, reasons) in &by_op {
            let body: Vec<String> = reasons
                .iter()
                .map(|(code, n)| format!("{code}×{n}"))
                .collect();
            out.push_str(&format!("  {op:<16} {}\n", body.join(", ")));
        }
    }

    let start = doc.events.len().saturating_sub(last_n);
    if start > 0 {
        out.push_str(&format!(
            "\nnarrative (last {} of {} events):\n",
            doc.events.len() - start,
            doc.events.len()
        ));
    } else {
        out.push_str("\nnarrative:\n");
    }
    for ev in &doc.events[start..] {
        let mut line = format!("  #{:<5} {:<10} [{}] {}", ev.seq, ev.t_us, ev.op, ev.reason);
        if let Some(d) = &ev.detail {
            line.push_str(&format!(" ({d})"));
        }
        for (k, v) in &ev.args {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push_str(&format!("  on {}", ev.thread));
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut reasons: Vec<String> = REASON_CODES
            .iter()
            .map(|c| format!("\"{c}\":0"))
            .collect();
        reasons[0] = "\"direction-push\":2".to_string();
        reasons[1] = "\"direction-pull\":1".to_string();
        reasons[5] = "\"fuse-flush\":1".to_string();
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"total\":9,\"retained\":3,\"reasons\":{{{}}},\
             \"events\":[\
             {{\"seq\":4,\"reason\":\"direction-push\",\"op\":\"mxv\",\"ctx\":1,\
               \"thread\":\"grb-worker-0\",\"t_us\":10,\"frontier_nnz\":1,\
               \"frontier_len\":64,\"threshold_den\":8}},\
             {{\"seq\":6,\"reason\":\"direction-pull\",\"op\":\"mxv\",\"ctx\":1,\
               \"thread\":\"grb-worker-0\",\"t_us\":20,\"frontier_nnz\":16,\
               \"frontier_len\":64,\"threshold_den\":8}},\
             {{\"seq\":9,\"reason\":\"fuse-flush\",\"op\":\"vector.drain\",\"ctx\":1,\
               \"thread\":\"grb-worker-0\",\"t_us\":30,\"detail\":\"queue-end\",\
               \"chain_len\":5,\"nnz_in\":100}}\
             ]}}",
            reasons.join(",")
        )
    }

    #[test]
    fn parses_and_counts() {
        let doc = parse(&sample()).unwrap();
        assert_eq!(doc.total, 9);
        assert_eq!(doc.events.len(), 3);
        assert_eq!(doc.count("direction-push"), 2);
        assert_eq!(doc.count_expanded("direction-pick"), Some(3));
        assert_eq!(doc.count_expanded("fuse"), Some(1));
        assert_eq!(doc.count_expanded("nope"), None);
        assert_eq!(doc.events[2].detail.as_deref(), Some("queue-end"));
        assert_eq!(
            doc.events[2].args,
            vec![("chain_len".to_string(), 5), ("nnz_in".to_string(), 100)]
        );
    }

    #[test]
    fn rejects_structural_violations() {
        let bad_schema = sample().replace(SCHEMA, "graphblas-obs/explain/v9");
        assert!(matches!(
            parse(&bad_schema),
            Err(ExplainError::Structure(_))
        ));
        // seq must strictly increase.
        let bad_seq = sample().replace("\"seq\":6", "\"seq\":4");
        assert!(matches!(parse(&bad_seq), Err(ExplainError::Structure(_))));
        // retained must match the array length.
        let bad_retained = sample().replace("\"retained\":3", "\"retained\":7");
        assert!(matches!(
            parse(&bad_retained),
            Err(ExplainError::Structure(_))
        ));
        // Aggregates must cover what is retained.
        let bad_counts = sample().replace("\"fuse-flush\":1", "\"fuse-flush\":0");
        assert!(matches!(
            parse(&bad_counts),
            Err(ExplainError::Structure(_))
        ));
        // Unknown reason codes are rejected.
        let bad_code = sample().replace(
            "\"reason\":\"fuse-flush\"",
            "\"reason\":\"vibes\"",
        );
        assert!(matches!(parse(&bad_code), Err(ExplainError::Structure(_))));
    }

    #[test]
    fn assert_specs() {
        let a = Assert::parse("reason=direction-pick,min=2").unwrap();
        assert_eq!(a.reason, "direction-pick");
        assert_eq!(a.min, 2);
        // min defaults to 1.
        assert_eq!(Assert::parse("reason=fuse-flush").unwrap().min, 1);
        assert!(Assert::parse("reason=unknown-thing").is_err());
        assert!(Assert::parse("min=3").is_err());
        assert!(Assert::parse("reason=fuse,min=abc").is_err());

        let doc = parse(&sample()).unwrap();
        assert_eq!(
            Assert::parse("reason=direction-pick,min=3").unwrap().check(&doc),
            Ok(3)
        );
        assert!(Assert::parse("reason=workspace-checkout,min=1")
            .unwrap()
            .check(&doc)
            .is_err());
    }

    #[test]
    fn render_includes_narrative_and_aggregates() {
        let doc = parse(&sample()).unwrap();
        let text = render(&doc, usize::MAX);
        assert!(text.contains("9 decisions recorded"));
        assert!(text.contains("direction-push"));
        assert!(text.contains("[vector.drain] fuse-flush (queue-end) chain_len=5"));
        assert!(text.contains("frontier_nnz=16"));
        // last_n trims the narrative but not the aggregates.
        let short = render(&doc, 1);
        assert!(short.contains("last 1 of 3"));
        assert!(!short.contains("frontier_nnz=1 "));
        assert!(short.contains("\"direction-push\"") || short.contains("direction-push"));
    }
}
