//! Deep container verification — the `grb_check` surface, re-exported
//! from `graphblas-core` plus raw-store helpers for the Table III formats.
//!
//! The container-level verifier lives in `graphblas_core::introspect`
//! (next to `ObjectStats`, per the GrB_get-style design): `grb_check`
//! validates a `Matrix` / `Vector` / `Scalar` without forcing completion —
//! Table III store invariants, store-vs-logical shape agreement, and the
//! §V rule that a poisoned object holds no pending stages. Debug builds
//! run the same checks automatically at every kernel boundary (after
//! `drain` and the `ensure_*` canonicalizations).
//!
//! This module adds the *raw store* entry points so tools (and the model
//! tests) can validate a bare `Csr`/`Coo`/… without wrapping it in a
//! container.

pub use graphblas_core::introspect::{grb_check, Check, CheckError};
use graphblas_sparse::{Coo, Csc, Csr, Dense, DenseVec, FormatError, SparseVec};

/// Validates a bare CSR store (Table III `GrB_CSR_MATRIX` invariants).
pub fn check_csr<T>(a: &Csr<T>) -> Result<(), FormatError> {
    a.check()
}

/// Validates a bare CSC store (`GrB_CSC_MATRIX`).
pub fn check_csc<T>(a: &Csc<T>) -> Result<(), FormatError> {
    a.check()
}

/// Validates a bare COO store (`GrB_COO_MATRIX`).
pub fn check_coo<T>(a: &Coo<T>) -> Result<(), FormatError> {
    a.check()
}

/// Validates a bare dense store (`GrB_DENSE_ROW_MATRIX` /
/// `GrB_DENSE_COL_MATRIX`).
pub fn check_dense<T>(a: &Dense<T>) -> Result<(), FormatError> {
    a.check()
}

/// Validates a bare sparse vector (`GrB_SPARSE_VECTOR`).
pub fn check_svec<T>(a: &SparseVec<T>) -> Result<(), FormatError> {
    a.check()
}

/// Validates a bare dense vector (`GrB_DENSE_VECTOR`).
pub fn check_dvec<T>(a: &DenseVec<T>) -> Result<(), FormatError> {
    a.check()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_core::{Matrix, Vector};

    #[test]
    fn raw_store_checks() {
        let csr = Csr::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1i64, 2]).unwrap();
        check_csr(&csr).unwrap();
        let coo = Coo::from_parts(2, 2, vec![0], vec![1], vec![5i64]).unwrap();
        check_coo(&coo).unwrap();
        let sv = SparseVec::from_parts(4, vec![1, 3], vec![1i64, 2]).unwrap();
        check_svec(&sv).unwrap();
        let dv = DenseVec::from_values(vec![1i64, 2, 3]);
        check_dvec(&dv).unwrap();
    }

    #[test]
    fn container_checks_via_reexport() {
        let m = Matrix::<i64>::new(3, 3).unwrap();
        m.set_element(1, 0, 2).unwrap();
        grb_check(&m).unwrap();
        let v = Vector::<f64>::new(5).unwrap();
        v.set_element(2.5, 1).unwrap();
        grb_check(&v).unwrap();
    }
}
