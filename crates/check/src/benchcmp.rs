//! Baseline-vs-baseline kernel benchmark comparison (`benchcmp`).
//!
//! Reads two `graphblas-bench/kernels/*` baseline files (old, new) with
//! the zero-dependency JSON parser from [`crate::trace`] and flags
//! regressions:
//!
//! * every shared `median_secs` workload whose new median exceeds the
//!   old by more than the median threshold;
//! * every shared `kernels.<k>.p99_ns` whose new p99 exceeds the old by
//!   more than the p99 threshold.
//!
//! Two profiles:
//!
//! * **strict** (default, the EXPERIMENTS.md regression protocol for
//!   full-scale baselines): 25% on medians, 25% on p99.
//! * **smoke-tolerant** (`--smoke-tolerant`, used by `scripts/check.sh`
//!   against the committed smoke baseline): 100% on medians, 200% on
//!   p99, plus noise floors — medians under 500µs and p99s under 250µs
//!   are skipped outright, because at smoke scale those are scheduler
//!   noise, not kernels. Comparing baselines whose `scale`/`smoke`
//!   fields disagree is skipped with a note (strict mode refuses
//!   instead): the numbers mean different workloads.
//!
//! Workloads or kernels present in only one file are reported as notes,
//! never as failures — a new kernel is not a regression. When the two
//! files carry different schema versions, the per-workload medians are
//! still gated but the per-kernel p99 histograms are skipped with a
//! note: histograms aggregate the whole run, and a schema bump means the
//! run's workload mix changed, making them structurally incomparable.

use std::fmt;

use crate::trace::{self, TraceError, Value};

/// Comparison thresholds and floors. Ratios are fractional increase:
/// `0.25` fails when new > old × 1.25.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Allowed fractional increase of a workload median.
    pub median_ratio: f64,
    /// Allowed fractional increase of a kernel p99.
    pub p99_ratio: f64,
    /// Medians with old value below this (seconds) are skipped as noise.
    pub median_floor_secs: f64,
    /// p99 pairs with old value below this (nanoseconds) are skipped.
    pub p99_floor_ns: f64,
    /// Whether a `scale`/`smoke` mismatch between the files is a skip
    /// (tolerant) or an error (strict).
    pub skip_on_shape_mismatch: bool,
}

impl Profile {
    /// The EXPERIMENTS.md regression gate for full-scale baselines.
    pub fn strict() -> Profile {
        Profile {
            median_ratio: 0.25,
            p99_ratio: 0.25,
            median_floor_secs: 0.0,
            p99_floor_ns: 0.0,
            skip_on_shape_mismatch: false,
        }
    }

    /// The CI gate for smoke-scale baselines: wide thresholds + noise
    /// floors, because a 3-run scale-9 median jitters far more than a
    /// 5-run scale-13 one.
    pub fn smoke_tolerant() -> Profile {
        Profile {
            median_ratio: 1.0,
            p99_ratio: 2.0,
            median_floor_secs: 500e-6,
            p99_floor_ns: 250e3,
            skip_on_shape_mismatch: true,
        }
    }
}

/// The outcome of one comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Regressions that fail the gate.
    pub regressions: Vec<String>,
    /// Informational lines (improvements, skips, key mismatches).
    pub notes: Vec<String>,
    /// Metric pairs actually compared (0 means nothing was gated — e.g.
    /// a tolerated shape mismatch).
    pub compared: usize,
}

impl Comparison {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Why a comparison could not run at all.
#[derive(Debug, Clone, PartialEq)]
pub enum CmpError {
    Json { which: &'static str, err: String },
    Structure(String),
}

impl fmt::Display for CmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpError::Json { which, err } => write!(f, "{which} baseline: {err}"),
            CmpError::Structure(s) => write!(f, "{s}"),
        }
    }
}

fn parse(which: &'static str, text: &str) -> Result<Value, CmpError> {
    trace::parse_json(text).map_err(|e: TraceError| CmpError::Json {
        which,
        err: e.to_string(),
    })
}

fn num_at(doc: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_num()
}

fn obj_keys<'a>(doc: &'a Value, key: &str) -> Vec<&'a str> {
    match doc.get(key) {
        Some(Value::Obj(members)) => members.iter().map(|(k, _)| k.as_str()).collect(),
        _ => Vec::new(),
    }
}

fn pct(old: f64, new: f64) -> f64 {
    if old > 0.0 {
        (new / old - 1.0) * 100.0
    } else {
        f64::INFINITY
    }
}

/// Compares two baseline documents under `profile`.
pub fn compare(old_text: &str, new_text: &str, profile: &Profile) -> Result<Comparison, CmpError> {
    let old = parse("old", old_text)?;
    let new = parse("new", new_text)?;
    for (which, doc) in [("old", &old), ("new", &new)] {
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
        if !schema.starts_with("graphblas-bench/kernels/") {
            return Err(CmpError::Structure(format!(
                "{which} baseline has schema \"{schema}\", expected graphblas-bench/kernels/*"
            )));
        }
    }

    let mut out = Comparison {
        regressions: Vec::new(),
        notes: Vec::new(),
        compared: 0,
    };

    // Workload shape must agree, or the numbers compare different work.
    let shape = |doc: &Value| {
        (
            num_at(doc, &["scale"]).unwrap_or(-1.0) as i64,
            doc.get("smoke").map(|v| v == &Value::Bool(true)),
        )
    };
    if shape(&old) != shape(&new) {
        let msg = format!(
            "baseline shapes differ (old scale {:?}, new scale {:?}): numbers are incomparable",
            num_at(&old, &["scale"]),
            num_at(&new, &["scale"])
        );
        if profile.skip_on_shape_mismatch {
            out.notes.push(format!("skipped: {msg}"));
            return Ok(out);
        }
        return Err(CmpError::Structure(msg));
    }

    // Workload medians.
    for wl in obj_keys(&old, "median_secs") {
        let old_v = num_at(&old, &["median_secs", wl]).unwrap_or(f64::NAN);
        let Some(new_v) = num_at(&new, &["median_secs", wl]) else {
            out.notes.push(format!("median {wl}: missing in new baseline"));
            continue;
        };
        if old_v < profile.median_floor_secs {
            out.notes.push(format!(
                "median {wl}: old {:.1}µs under noise floor, skipped",
                old_v * 1e6
            ));
            continue;
        }
        out.compared += 1;
        let delta = pct(old_v, new_v);
        let line = format!(
            "median {wl}: {:.3}ms -> {:.3}ms ({:+.1}%)",
            old_v * 1e3,
            new_v * 1e3,
            delta
        );
        if new_v > old_v * (1.0 + profile.median_ratio) {
            out.regressions.push(line);
        } else {
            out.notes.push(line);
        }
    }
    for wl in obj_keys(&new, "median_secs") {
        if num_at(&old, &["median_secs", wl]).is_none() {
            out.notes
                .push(format!("median {wl}: new workload, no old value"));
        }
    }

    // Per-kernel p99 tails. These aggregate every call of the whole run,
    // so they are only like-for-like when both baselines ran the same
    // workload mix — which is exactly what the schema version encodes
    // (e.g. v3 added in-harness dispatch-ablation phases that feed the
    // same kernel histograms). Across schema versions the medians above
    // remain per-workload and comparable; the histograms do not.
    fn schema_of(doc: &Value) -> &str {
        doc.get("schema").and_then(Value::as_str).unwrap_or("")
    }
    if schema_of(&old) != schema_of(&new) {
        out.notes.push(format!(
            "kernel p99s skipped: workload mix changed ({} -> {})",
            schema_of(&old),
            schema_of(&new)
        ));
        return Ok(out);
    }
    for k in obj_keys(&old, "kernels") {
        let old_v = num_at(&old, &["kernels", k, "p99_ns"]).unwrap_or(f64::NAN);
        let Some(new_v) = num_at(&new, &["kernels", k, "p99_ns"]) else {
            out.notes.push(format!("p99 {k}: missing in new baseline"));
            continue;
        };
        if old_v < profile.p99_floor_ns {
            out.notes.push(format!(
                "p99 {k}: old {:.0}µs under noise floor, skipped",
                old_v / 1e3
            ));
            continue;
        }
        out.compared += 1;
        let delta = pct(old_v, new_v);
        let line = format!(
            "p99 {k}: {:.0}µs -> {:.0}µs ({:+.1}%)",
            old_v / 1e3,
            new_v / 1e3,
            delta
        );
        if new_v > old_v * (1.0 + profile.p99_ratio) {
            out.regressions.push(line);
        } else {
            out.notes.push(line);
        }
    }
    for k in obj_keys(&new, "kernels") {
        if num_at(&old, &["kernels", k, "p99_ns"]).is_none() {
            out.notes.push(format!("p99 {k}: new kernel, no old value"));
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(scale: u64, smoke: bool, pagerank: f64, spmv_p99: u64) -> String {
        format!(
            "{{\"schema\":\"graphblas-bench/kernels/v2\",\"smoke\":{smoke},\
             \"scale\":{scale},\"runs\":3,\
             \"median_secs\":{{\"pagerank\":{pagerank},\"bfs\":0.0001}},\
             \"kernels\":{{\"spmv\":{{\"calls\":10,\"p50_ns\":1000,\
             \"p99_ns\":{spmv_p99}}}}}}}"
        )
    }

    #[test]
    fn flags_median_and_p99_regressions() {
        let old = baseline(13, false, 0.020, 3_000_000);
        let slow = baseline(13, false, 0.030, 8_000_000);
        let cmp = compare(&old, &slow, &Profile::strict()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("pagerank"));
        assert!(cmp.regressions[1].contains("spmv"));
    }

    #[test]
    fn passes_within_threshold_and_notes_improvements() {
        let old = baseline(13, false, 0.020, 3_000_000);
        let ok = baseline(13, false, 0.022, 2_000_000);
        let cmp = compare(&old, &ok, &Profile::strict()).unwrap();
        assert!(cmp.passed());
        assert!(cmp.compared >= 3);
        assert!(cmp.notes.iter().any(|n| n.contains("pagerank")));
    }

    #[test]
    fn smoke_profile_floors_and_tolerates() {
        // bfs old median 100µs is under the 500µs floor: skipped, so even
        // a huge jump there cannot fail the tolerant gate.
        let old = baseline(9, true, 0.002, 3_000_000);
        let noisy = baseline(9, true, 0.0039, 8_500_000);
        let tolerant = compare(&old, &noisy, &Profile::smoke_tolerant()).unwrap();
        assert!(tolerant.passed(), "{:?}", tolerant.regressions);
        // The same files fail strict.
        let strict = compare(&old, &noisy, &Profile::strict()).unwrap();
        assert!(!strict.passed());
        // Beyond even the tolerant thresholds: fails.
        let bad = baseline(9, true, 0.0041, 9_100_000);
        let cmp = compare(&old, &bad, &Profile::smoke_tolerant()).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
    }

    #[test]
    fn shape_mismatch_skips_or_errors() {
        let full = baseline(13, false, 0.020, 3_000_000);
        let smoke = baseline(9, true, 0.002, 300_000);
        let tolerant = compare(&full, &smoke, &Profile::smoke_tolerant()).unwrap();
        assert!(tolerant.passed());
        assert_eq!(tolerant.compared, 0);
        assert!(tolerant.notes[0].contains("incomparable"));
        assert!(compare(&full, &smoke, &Profile::strict()).is_err());
    }

    #[test]
    fn one_sided_keys_are_notes_not_failures() {
        let old = baseline(13, false, 0.020, 3_000_000);
        let with_extra = old.replace(
            "\"bfs\":0.0001",
            "\"bfs\":0.0001,\"fused_apply\":0.001",
        );
        let cmp = compare(&old, &with_extra, &Profile::strict()).unwrap();
        assert!(cmp.passed());
        assert!(cmp.notes.iter().any(|n| n.contains("new workload")));
        let cmp2 = compare(&with_extra, &old, &Profile::strict()).unwrap();
        assert!(cmp2.passed());
        assert!(cmp2.notes.iter().any(|n| n.contains("missing in new")));
    }

    #[test]
    fn schema_bump_gates_medians_but_skips_kernel_histograms() {
        let old = baseline(13, false, 0.020, 3_000_000);
        // Same shape, new schema version, huge p99 growth (a new workload
        // feeding the same kernel histogram), medians fine.
        let v3 = baseline(13, false, 0.021, 90_000_000)
            .replace("graphblas-bench/kernels/v2", "graphblas-bench/kernels/v3");
        let cmp = compare(&old, &v3, &Profile::strict()).unwrap();
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        assert!(cmp.notes.iter().any(|n| n.contains("workload mix changed")));
        // A median regression still fails across the schema bump.
        let v3_slow = baseline(13, false, 0.030, 3_000_000)
            .replace("graphblas-bench/kernels/v2", "graphblas-bench/kernels/v3");
        assert!(!compare(&old, &v3_slow, &Profile::strict()).unwrap().passed());
    }

    #[test]
    fn rejects_wrong_schema() {
        let old = baseline(13, false, 0.020, 3_000_000);
        let alien = old.replace("graphblas-bench/kernels/v2", "something-else/v1");
        assert!(compare(&old, &alien, &Profile::strict()).is_err());
    }
}
