//! Machine-readable findings output shared by `grblint` and `grbsa`.
//!
//! Both tools emit the same stable schema (`graphblas-check/findings/v1`)
//! so CI and future tooling consume one format instead of scraping human
//! text:
//!
//! ```json
//! {
//!   "schema": "graphblas-check/findings/v1",
//!   "tool": "grbsa",
//!   "count": 1,
//!   "findings": [
//!     {"rule": "lock-order-cycle", "file": "crates/exec/src/pool.rs",
//!      "line": 42, "message": "…", "witness": "file:line; file:line"}
//!   ]
//! }
//! ```
//!
//! One finding per object; `witness` is the evidence chain (for grblint,
//! the offending source line; for grbsa, the `file:line` chain that
//! proves the finding). The writer is hand-rolled like every other JSON
//! producer in this workspace, and `check::trace::parse_json` reads it
//! back — the round-trip is covered by tests.

/// Schema identifier embedded in every findings document.
pub const FINDINGS_SCHEMA: &str = "graphblas-check/findings/v1";

/// One finding in tool-neutral form.
#[derive(Debug, Clone)]
pub struct JsonFinding {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub message: String,
    pub witness: String,
}

/// Renders the findings document for `tool` (`"grblint"` / `"grbsa"`).
pub fn findings_json(tool: &str, findings: &[JsonFinding]) -> String {
    let mut out = String::with_capacity(256 + findings.len() * 160);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", FINDINGS_SCHEMA));
    out.push_str(&format!("  \"tool\": \"{}\",\n", escape(tool)));
    out.push_str(&format!("  \"count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", escape(&f.rule)));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": \"{}\", ", escape(&f.message)));
        out.push_str(&format!("\"witness\": \"{}\"", escape(&f.witness)));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::parse_json;

    #[test]
    fn findings_document_round_trips_through_trace_parser() {
        let doc = findings_json(
            "grbsa",
            &[JsonFinding {
                rule: "lock-order-cycle".into(),
                file: "crates/exec/src/pool.rs".into(),
                line: 42,
                message: "potential deadlock \"cycle\"".into(),
                witness: "a.rs:1; b.rs:2".into(),
            }],
        );
        let v = parse_json(&doc).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(FINDINGS_SCHEMA)
        );
        assert_eq!(v.get("tool").and_then(|s| s.as_str()), Some("grbsa"));
        assert_eq!(v.get("count").and_then(|n| n.as_num()), Some(1.0));
        let first = match v.get("findings") {
            Some(crate::trace::Value::Arr(items)) => &items[0],
            other => panic!("findings is not an array: {:?}", other),
        };
        assert_eq!(
            first.get("rule").and_then(|s| s.as_str()),
            Some("lock-order-cycle")
        );
        assert_eq!(first.get("line").and_then(|n| n.as_num()), Some(42.0));
        assert_eq!(
            first.get("message").and_then(|s| s.as_str()),
            Some("potential deadlock \"cycle\"")
        );
    }

    #[test]
    fn empty_findings_is_still_a_valid_document() {
        let doc = findings_json("grblint", &[]);
        let v = parse_json(&doc).expect("valid JSON");
        assert_eq!(v.get("count").and_then(|n| n.as_num()), Some(0.0));
    }
}
