//! The repo-specific lint pass behind the `grblint` binary.
//!
//! Ten rules, each encoding a convention this workspace actually relies
//! on (a general-purpose linter cannot know them):
//!
//! * `relaxed-ordering` — `Ordering::Relaxed` is forbidden outside
//!   `crates/obs` (whose monotonic counters are the one sanctioned use).
//!   Everywhere else a relaxed access is either a bug (inferring
//!   cross-thread state without a happens-before edge — the §III lost-
//!   wakeup family) or needs a written justification.
//! * `no-unwrap` — `unwrap()`/`expect(` are forbidden in `crates/core` and
//!   `crates/sparse` non-test code: the §V error model requires fallible
//!   paths to flow through `GrB_Info`-mapped errors, not panics.
//!   `debug_assert` lines are exempt (they *are* the sanctioned panic).
//! * `grb-error-type` — every public fallible API in `crates/core` must
//!   return the `GrB_Info`-mapped error type (`GrbResult`); a bare
//!   `Result<_, OtherError>` leaks a non-spec error surface.
//! * `undocumented-unsafe` — every `unsafe` needs a `// SAFETY:` comment
//!   on or immediately above it.
//! * `span-at-kernel-boundary` — public kernel entry points must open an
//!   obs span (or timeline phase) so the telemetry layer sees every
//!   kernel: in `crates/sparse` this covers `pub fn`s taking `&Context`
//!   in the kernel files (`spgemm`, `spmv`, `ewise`, `transpose`,
//!   `convert`, `kron`); in `crates/core` it covers `pub fn`s taking
//!   `&Descriptor` under `operations/`.
//! * `decision-without-event` — a runtime choice point that bumps a
//!   decision counter (`record_direction_pick`, `record_workspace_checkout`,
//!   `record_dispatch_pick`, `record_format_pick`) must also emit a
//!   reason-coded provenance event (`events::decision_*`) in the same
//!   function body, so `GrB_explain` never silently loses a decision the
//!   aggregate counters admit to.
//! * `dyn-semiring-in-hot-kernel` — the hot sparse kernel files must stay
//!   generic over their operator closures (`FM: Fn(...)` type parameters
//!   the registry monomorphizes), never accept a type-erased `dyn Fn`:
//!   a per-scalar indirect call in the inner loop is exactly the §II
//!   overhead the kernel registry exists to remove. Callbacks that run
//!   outside the flop loop (a dedup hook at conversion time) carry a
//!   waiver.
//! * `counter-without-metric` — every `pub <field>: AtomicU64` counter in
//!   the obs counter blocks (`crates/obs/src/counters.rs`) must have a
//!   metric in the export registry whose last dotted segment is the field
//!   name, so a counter cannot be added without also being scrapeable.
//!   The registry names are read from `crates/obs/src/export/registry.rs`
//!   by `lint_workspace`; linting a single file via [`lint_source`] skips
//!   this rule (no registry in scope).
//! * `drain-without-barrier-span` — a `crates/core` function that takes a
//!   container's pending op-DAG queue (the drain/force point of the §III
//!   nonblocking engine) must open an obs span or timeline phase *and*
//!   emit the `dag-force` decision event in the same body. A drain that
//!   runs dark is invisible to `grbtop`/Chrome traces, and a force whose
//!   cause is never recorded breaks the `GrB_explain` provenance chain
//!   the ablation tooling asserts on.
//!
//! Any rule can be waived at a specific site with a comment
//! `// grblint: allow(<rule>)` on the same line or in the comment block
//! immediately preceding the statement; a waiver covers violations through
//! the end of that statement (multi-line method chains included). Waivers
//! are deliberate — each one is a reviewed justification, greppable via
//! `grblint:`.
//!
//! Waivers are themselves checked (`stale-waiver`): one that suppresses
//! nothing — because the code it excused was since fixed or removed, or
//! because it names no known rule — is reported, so the waiver inventory
//! never outlives the exceptions it documents. Doc comments (`///`,
//! `//!`) never arm a waiver: prose *about* the waiver syntax is not a
//! waiver.
//!
//! The pass is textual (line-oriented with comment/test stripping), not
//! syntactic: it trades a parser for zero dependencies and for speed, and
//! the rules are chosen so that textual matching has no false negatives on
//! this codebase's idiom. False positives are what waivers are for.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules. `slug` values are what `grblint: allow(...)` names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `Ordering::Relaxed` outside `crates/obs`.
    RelaxedOrdering,
    /// `unwrap()`/`expect(` in core/sparse non-test code.
    NoUnwrap,
    /// Public fallible core API not returning `GrbResult`.
    GrbErrorType,
    /// `unsafe` without a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// Public kernel entry point with no obs span/phase in its body.
    SpanAtKernelBoundary,
    /// Decision-counter site with no reason-coded event in the same body.
    DecisionWithoutEvent,
    /// Type-erased `dyn Fn` operator in a hot sparse kernel file.
    DynSemiringInHotKernel,
    /// An obs counter field with no matching export-registry metric.
    CounterWithoutMetric,
    /// An op-DAG drain/force body with no obs span or dag-force event.
    DrainWithoutBarrierSpan,
    /// A `grblint: allow(...)` that suppresses nothing (or names no rule).
    StaleWaiver,
}

impl Rule {
    /// The kebab-case name used in waiver comments and reports.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::RelaxedOrdering => "relaxed-ordering",
            Rule::NoUnwrap => "no-unwrap",
            Rule::GrbErrorType => "grb-error-type",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::SpanAtKernelBoundary => "span-at-kernel-boundary",
            Rule::DecisionWithoutEvent => "decision-without-event",
            Rule::DynSemiringInHotKernel => "dyn-semiring-in-hot-kernel",
            Rule::CounterWithoutMetric => "counter-without-metric",
            Rule::DrainWithoutBarrierSpan => "drain-without-barrier-span",
            Rule::StaleWaiver => "stale-waiver",
        }
    }

    /// All rules, for `--list-rules`.
    pub fn all() -> [Rule; 10] {
        [
            Rule::RelaxedOrdering,
            Rule::NoUnwrap,
            Rule::GrbErrorType,
            Rule::UndocumentedUnsafe,
            Rule::SpanAtKernelBoundary,
            Rule::DecisionWithoutEvent,
            Rule::DynSemiringInHotKernel,
            Rule::CounterWithoutMetric,
            Rule::DrainWithoutBarrierSpan,
            Rule::StaleWaiver,
        ]
    }

    /// Whether this rule applies to a file of crate `krate`.
    fn applies_to(self, krate: &str) -> bool {
        match self {
            Rule::RelaxedOrdering => krate != "obs",
            Rule::NoUnwrap => krate == "core" || krate == "sparse",
            Rule::GrbErrorType => krate == "core",
            Rule::UndocumentedUnsafe => true,
            Rule::SpanAtKernelBoundary => krate == "core" || krate == "sparse",
            // obs defines the counters and events themselves; everywhere
            // else a counter bump without an event loses provenance.
            Rule::DecisionWithoutEvent => krate != "obs",
            Rule::DynSemiringInHotKernel => krate == "sparse",
            // The counter blocks live in obs; the registry that must
            // cover them does too.
            Rule::CounterWithoutMetric => krate == "obs",
            Rule::DrainWithoutBarrierSpan => krate == "core",
            Rule::StaleWaiver => true,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path as reported (relative to the scanned root).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.slug(),
            self.snippet
        )
    }
}

/// Splits a line into (code, comment) at the first `//` that is not inside
/// a string literal. Good enough for this codebase's idiom (no `//` inside
/// string literals on lintable lines; raw multiline strings only occur in
/// tests, which are skipped).
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return (&line[..i], &line[i..]);
            }
            _ => {}
        }
        i += 1;
    }
    (line, "")
}

/// Blanks out string-literal contents so patterns don't match inside
/// message text (e.g. a slug string containing a keyword).
fn strip_strings(code: &str) -> String {
    let mut out = String::with_capacity(code.len());
    let mut in_str = false;
    let mut chars = code.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str => {
                chars.next();
                out.push(' ');
            }
            '"' => {
                in_str = !in_str;
                out.push('"');
            }
            _ if in_str => out.push(' '),
            _ => out.push(c),
        }
    }
    out
}

/// Parses `grblint: allow(rule-a, rule-b)` clauses out of a comment,
/// returning each name with its resolved rule (`None` for names that
/// match no rule — including `stale-waiver`, which is a meta-rule about
/// waivers and cannot itself be waived). Doc comments (`///`, `//!`)
/// never arm a waiver: prose describing the syntax is not a waiver.
fn parse_waivers(comment: &str) -> Vec<(String, Option<Rule>)> {
    let mut out = Vec::new();
    let t = comment.trim_start();
    if t.starts_with("///") || t.starts_with("//!") {
        return out;
    }
    let Some(pos) = comment.find("grblint: allow(") else {
        return out;
    };
    let rest = &comment[pos + "grblint: allow(".len()..];
    let Some(end) = rest.find(')') else {
        return out;
    };
    for name in rest[..end].split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        let rule = Rule::all()
            .into_iter()
            .find(|r| r.slug() == name && *r != Rule::StaleWaiver);
        out.push((name.to_string(), rule));
    }
    out
}

/// The waived rules named by a comment (resolved names only).
fn waivers_in(comment: &str) -> Vec<Rule> {
    parse_waivers(comment)
        .into_iter()
        .filter_map(|(_, r)| r)
        .collect()
}

/// Whether a code line ends the current statement (for waiver scope).
fn ends_statement(code: &str) -> bool {
    let t = code.trim_end();
    t.ends_with(';') || t.ends_with('{') || t.ends_with('}')
}

// The pattern is assembled so this file does not itself contain the
// forbidden token (grblint scans its own crate).
fn relaxed_pattern() -> &'static str {
    concat!("Ordering::", "Relaxed")
}

/// Kernel files in `crates/sparse` whose `&Context`-taking public
/// functions must open a span (`span-at-kernel-boundary`).
const SPARSE_KERNEL_FILES: [&str; 6] = [
    "spgemm.rs",
    "spmv.rs",
    "ewise.rs",
    "transpose.rs",
    "convert.rs",
    "kron.rs",
];

/// Tokens that satisfy `span-at-kernel-boundary`: an obs kernel span, a
/// named context span, a timeline phase, or the convert-kernel wrapper.
const SPAN_TOKENS: [&str; 4] = ["kernel_span(", "span_ctx(", "phase(", "with_convert_span("];

/// Finds a waiver for `rule` covering the site at `line` (waiver on that
/// line or in the contiguous comment block immediately above it) and
/// returns the waiver's line index, for used-waiver bookkeeping. Used by
/// the body-scoped passes, whose sites are single statements.
fn site_waiver(lines: &[&str], line: usize, rule: Rule) -> Option<usize> {
    let (_, comment) = split_comment(lines[line]);
    if waivers_in(comment).contains(&rule) {
        return Some(line);
    }
    let mut j = line;
    while j > 0 {
        j -= 1;
        let (pcode, pcomment) = split_comment(lines[j]);
        if !pcode.trim().is_empty() {
            break;
        }
        if waivers_in(pcomment).contains(&rule) {
            return Some(j);
        }
        if pcomment.is_empty() {
            break;
        }
    }
    None
}

/// The `span-at-kernel-boundary` pass: function-body scoped, so it runs
/// separately from the line-oriented rules. Scope: sparse kernel files'
/// `pub fn`s taking `&Context`; core `operations/` `pub fn`s taking
/// `&Descriptor`.
fn lint_span_boundaries(
    krate: &str,
    file: &str,
    lines: &[&str],
    test_start: usize,
    used: &mut HashSet<(usize, Rule)>,
    out: &mut Vec<Violation>,
) {
    let norm = file.replace('\\', "/");
    let basename = norm.rsplit('/').next().unwrap_or(&norm);
    let in_sparse = krate == "sparse" && SPARSE_KERNEL_FILES.contains(&basename);
    let in_core = krate == "core" && norm.contains("operations/") && basename != "mod.rs";
    if !in_sparse && !in_core {
        return;
    }
    let marker = if in_sparse { ": &Context" } else { ": &Descriptor" };
    let mut i = 0;
    while i < test_start {
        let (code, _) = split_comment(lines[i]);
        if !code.trim_start().starts_with("pub fn") {
            i += 1;
            continue;
        }
        let fn_line = i;
        // Accumulate the signature until the body opens (or a `;` ends a
        // bodyless declaration).
        let mut sig = String::new();
        let mut j = i;
        let mut open = None;
        while j < test_start {
            let (c, _) = split_comment(lines[j]);
            sig.push(' ');
            sig.push_str(c.trim());
            if c.contains('{') {
                open = Some(j);
                break;
            }
            if c.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        // Walk the body by brace depth, looking for a span token. On the
        // opening line only the part after `{` is body.
        let mut depth = 0i64;
        let mut has_span = false;
        let mut k = open;
        while k < lines.len() {
            let (c, _) = split_comment(lines[k]);
            let c = strip_strings(c);
            let body_part = if k == open {
                c.split_once('{').map(|x| x.1).unwrap_or("")
            } else {
                c.as_str()
            };
            if SPAN_TOKENS.iter().any(|t| body_part.contains(t)) {
                has_span = true;
            }
            depth += c.matches('{').count() as i64 - c.matches('}').count() as i64;
            if depth <= 0 {
                break;
            }
            k += 1;
        }
        if sig.contains(marker) && !has_span {
            match site_waiver(lines, fn_line, Rule::SpanAtKernelBoundary) {
                Some(w) => {
                    used.insert((w, Rule::SpanAtKernelBoundary));
                }
                None => out.push(Violation {
                    file: file.to_string(),
                    line: fn_line + 1,
                    rule: Rule::SpanAtKernelBoundary,
                    snippet: lines[fn_line].trim().chars().take(120).collect(),
                }),
            }
        }
        i = k.max(open) + 1;
    }
}

/// Counter bumps that mark a runtime choice point; each obliges the
/// enclosing function to emit a reason-coded `events::decision_*` event
/// (`decision-without-event`). Assembled from pieces so grblint does not
/// flag its own pattern table.
fn decision_tokens() -> [String; 4] {
    [
        concat!("record_direction_", "pick(").to_string(),
        concat!("record_workspace_", "checkout(").to_string(),
        concat!("record_dispatch_", "pick(").to_string(),
        concat!("record_format_", "pick(").to_string(),
    ]
}

/// The forbidden type-erased operator pattern for
/// `dyn-semiring-in-hot-kernel`, assembled so grblint does not flag its
/// own pattern table.
fn dyn_fn_pattern() -> &'static str {
    concat!("dyn ", "Fn")
}

/// Token whose presence in a function body satisfies
/// `decision-without-event`.
fn decision_event_token() -> &'static str {
    concat!("events::", "decision")
}

/// The `decision-without-event` pass: function-body scoped, like
/// `lint_span_boundaries`. Any function (public or private) that bumps a
/// decision counter must also emit a provenance event somewhere in the
/// same body.
fn lint_decision_events(
    file: &str,
    lines: &[&str],
    test_start: usize,
    used: &mut HashSet<(usize, Rule)>,
    out: &mut Vec<Violation>,
) {
    let tokens = decision_tokens();
    let mut i = 0;
    while i < test_start {
        let (code, _) = split_comment(lines[i]);
        let t = code.trim_start();
        let is_fn =
            t.starts_with("pub fn ") || t.starts_with("pub(crate) fn ") || t.starts_with("fn ");
        if !is_fn {
            i += 1;
            continue;
        }
        // Find where the body opens (or skip a bodyless declaration).
        let mut j = i;
        let mut open = None;
        while j < test_start {
            let (c, _) = split_comment(lines[j]);
            if c.contains('{') {
                open = Some(j);
                break;
            }
            if c.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        // Walk the body by brace depth, collecting decision-counter sites
        // and looking for a provenance event.
        let mut depth = 0i64;
        let mut has_event = false;
        let mut sites: Vec<usize> = Vec::new();
        let mut k = open;
        while k < lines.len() {
            let (c, _) = split_comment(lines[k]);
            let c = strip_strings(c);
            let body_part = if k == open {
                c.split_once('{').map(|x| x.1).unwrap_or("")
            } else {
                c.as_str()
            };
            if body_part.contains(decision_event_token()) {
                has_event = true;
            }
            if tokens.iter().any(|tok| body_part.contains(tok.as_str())) {
                sites.push(k);
            }
            depth += c.matches('{').count() as i64 - c.matches('}').count() as i64;
            if depth <= 0 {
                break;
            }
            k += 1;
        }
        if !has_event {
            for site in sites {
                match site_waiver(lines, site, Rule::DecisionWithoutEvent) {
                    Some(w) => {
                        used.insert((w, Rule::DecisionWithoutEvent));
                    }
                    None => out.push(Violation {
                        file: file.to_string(),
                        line: site + 1,
                        rule: Rule::DecisionWithoutEvent,
                        snippet: lines[site].trim().chars().take(120).collect(),
                    }),
                }
            }
        }
        i = k.max(open) + 1;
    }
}

/// The queue-take expression that marks a function as an op-DAG drain
/// point (`drain-without-barrier-span`), assembled so grblint does not
/// flag its own pattern table.
fn drain_take_token() -> &'static str {
    concat!("take(&mut self.", "pending)")
}

/// Token whose presence satisfies the event half of
/// `drain-without-barrier-span`: the drain recorded why the DAG was
/// forced.
fn dag_force_token() -> &'static str {
    concat!("events::decision_dag_", "force")
}

/// The `drain-without-barrier-span` pass: function-body scoped, like
/// `lint_span_boundaries`. Any function that takes a container's pending
/// queue — the §III drain/force point — must open an obs span (or
/// timeline phase) *and* emit the `dag-force` decision event in the same
/// body.
fn lint_drain_barriers(
    file: &str,
    lines: &[&str],
    test_start: usize,
    used: &mut HashSet<(usize, Rule)>,
    out: &mut Vec<Violation>,
) {
    let mut i = 0;
    while i < test_start {
        let (code, _) = split_comment(lines[i]);
        let t = code.trim_start();
        let is_fn =
            t.starts_with("pub fn ") || t.starts_with("pub(crate) fn ") || t.starts_with("fn ");
        if !is_fn {
            i += 1;
            continue;
        }
        let mut j = i;
        let mut open = None;
        while j < test_start {
            let (c, _) = split_comment(lines[j]);
            if c.contains('{') {
                open = Some(j);
                break;
            }
            if c.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut depth = 0i64;
        let mut has_span = false;
        let mut has_force_event = false;
        let mut sites: Vec<usize> = Vec::new();
        let mut k = open;
        while k < lines.len() {
            let (c, _) = split_comment(lines[k]);
            let c = strip_strings(c);
            let body_part = if k == open {
                c.split_once('{').map(|x| x.1).unwrap_or("")
            } else {
                c.as_str()
            };
            if SPAN_TOKENS.iter().any(|t| body_part.contains(t)) {
                has_span = true;
            }
            if body_part.contains(dag_force_token()) {
                has_force_event = true;
            }
            if body_part.contains(drain_take_token()) {
                sites.push(k);
            }
            depth += c.matches('{').count() as i64 - c.matches('}').count() as i64;
            if depth <= 0 {
                break;
            }
            k += 1;
        }
        if !(has_span && has_force_event) {
            for site in sites {
                match site_waiver(lines, site, Rule::DrainWithoutBarrierSpan) {
                    Some(w) => {
                        used.insert((w, Rule::DrainWithoutBarrierSpan));
                    }
                    None => out.push(Violation {
                        file: file.to_string(),
                        line: site + 1,
                        rule: Rule::DrainWithoutBarrierSpan,
                        snippet: lines[site].trim().chars().take(120).collect(),
                    }),
                }
            }
        }
        i = k.max(open) + 1;
    }
}

/// Workspace-relative path of the obs counter blocks, the one file the
/// `counter-without-metric` pass scans.
const OBS_COUNTERS_FILE: &str = "crates/obs/src/counters.rs";

/// Workspace-relative path of the obs export registry, the source of
/// truth for `counter-without-metric`.
const OBS_REGISTRY_FILE: &str = "crates/obs/src/export/registry.rs";

/// Extracts the dotted metric names declared in the obs export registry:
/// every non-test string literal starting with `grb.` and containing no
/// spaces (help texts have spaces; names never do).
pub fn registry_metric_names(source: &str) -> Vec<String> {
    let lines: Vec<&str> = source.lines().collect();
    let test_start = lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(lines.len());
    let mut out = Vec::new();
    for raw in lines.iter().take(test_start) {
        let (code, _) = split_comment(raw);
        let mut rest = code;
        while let Some(start) = rest.find('"') {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('"') else { break };
            let lit = &tail[..end];
            if lit.len() > "grb.".len() && lit.starts_with("grb.") && !lit.contains(' ') {
                out.push(lit.to_string());
            }
            rest = &tail[end + 1..];
        }
    }
    out
}

/// The `counter-without-metric` pass: every `pub <field>: AtomicU64` in
/// the obs counter blocks must have a registry metric whose last dotted
/// segment equals the field name, so a counter cannot be added without a
/// scrapeable metric. Runs only from [`lint_workspace`], which supplies
/// the registry names.
fn lint_counter_metrics(
    file: &str,
    lines: &[&str],
    test_start: usize,
    metrics: &[String],
    used: &mut HashSet<(usize, Rule)>,
    out: &mut Vec<Violation>,
) {
    let covered: HashSet<&str> = metrics
        .iter()
        .filter_map(|m| m.rsplit('.').next())
        .collect();
    for idx in 0..test_start {
        let (code, _) = split_comment(lines[idx]);
        let t = code.trim();
        let Some(rest) = t.strip_prefix("pub ") else {
            continue;
        };
        let Some((field, ty)) = rest.split_once(':') else {
            continue;
        };
        let field = field.trim();
        if ty.trim().trim_end_matches(',') != "AtomicU64"
            || field.is_empty()
            || !field
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            continue;
        }
        if covered.contains(field) {
            continue;
        }
        match site_waiver(lines, idx, Rule::CounterWithoutMetric) {
            Some(w) => {
                used.insert((w, Rule::CounterWithoutMetric));
            }
            None => out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::CounterWithoutMetric,
                snippet: format!(
                    "counter field `{field}` has no registry metric ending in `.{field}`"
                ),
            }),
        }
    }
}

/// Lints one file's source text. `krate` is the crate directory name
/// (`"core"`, `"sparse"`, …; `""` for the workspace root crate), `file` is
/// the path used in reports. Skips `counter-without-metric`, which needs
/// the registry names only [`lint_workspace`] has.
pub fn lint_source(krate: &str, file: &str, source: &str) -> Vec<Violation> {
    lint_source_with_metrics(krate, file, source, None)
}

/// [`lint_source`] plus the `counter-without-metric` pass when `metrics`
/// carries the registry's dotted names (`None` skips the rule).
pub fn lint_source_with_metrics(
    krate: &str,
    file: &str,
    source: &str,
    metrics: Option<&[String]>,
) -> Vec<Violation> {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    // Everything from a top-level `#[cfg(test)]` to EOF is test code in
    // this codebase (test modules sit at file bottom).
    let test_start = lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(lines.len());

    // Waiver bookkeeping for stale detection: every waiver site parsed
    // anywhere in the file, the subset that actually suppressed a
    // violation, and allow() names resolving to no rule.
    let mut waiver_sites: Vec<(usize, Rule)> = Vec::new();
    let mut unknown_names: Vec<(usize, String)> = Vec::new();
    let mut used: HashSet<(usize, Rule)> = HashSet::new();
    for (idx, raw) in lines.iter().enumerate().take(test_start) {
        let (_, comment) = split_comment(raw);
        for (name, rule) in parse_waivers(comment) {
            match rule {
                Some(r) => waiver_sites.push((idx, r)),
                None => unknown_names.push((idx, name)),
            }
        }
    }

    // Whether this file is one of the hot sparse kernels whose operator
    // parameters must stay generic (`dyn-semiring-in-hot-kernel`).
    let hot_kernel = {
        let norm = file.replace('\\', "/");
        let basename = norm.rsplit('/').next().unwrap_or(&norm).to_string();
        SPARSE_KERNEL_FILES.contains(&basename.as_str())
    };

    // Armed waivers: rule -> line index of the arming comment.
    let mut armed: HashMap<Rule, usize> = HashMap::new();
    // grb-error-type needs multi-line signatures: accumulate from `pub fn`
    // until the body opens.
    let mut sig: Option<(usize, String)> = None;

    for (idx, raw) in lines.iter().enumerate().take(test_start) {
        let lineno = idx + 1;
        let (code, comment) = split_comment(raw);
        for w in waivers_in(comment) {
            armed.insert(w, idx);
        }
        let code = strip_strings(code);
        let code = code.as_str();
        let code_trim = code.trim();
        if code_trim.is_empty() {
            continue; // pure comment / blank: waivers stay armed
        }

        let mut report = |rule: Rule, armed: &HashMap<Rule, usize>, used: &mut HashSet<(usize, Rule)>| {
            if !rule.applies_to(krate) {
                return;
            }
            if let Some(&w) = armed.get(&rule) {
                used.insert((w, rule));
                return;
            }
            out.push(Violation {
                file: file.to_string(),
                line: lineno,
                rule,
                snippet: raw.trim().chars().take(120).collect(),
            });
        };

        // relaxed-ordering: flags uses *and* imports.
        if code.contains(relaxed_pattern()) {
            report(Rule::RelaxedOrdering, &armed, &mut used);
        }

        // no-unwrap: debug_assert lines are the sanctioned panic.
        if (code.contains(".unwrap()") || code.contains(".expect("))
            && !code.contains("debug_assert")
        {
            report(Rule::NoUnwrap, &armed, &mut used);
        }

        // dyn-semiring-in-hot-kernel: operator closures in the hot sparse
        // kernel files must be generic type parameters, not type-erased.
        if hot_kernel && code.contains(dyn_fn_pattern()) {
            report(Rule::DynSemiringInHotKernel, &armed, &mut used);
        }

        // undocumented-unsafe: look for a SAFETY comment on this line or in
        // the contiguous comment block above. The keyword is matched on
        // word boundaries, with the pattern split so this file does not
        // match itself.
        let has_unsafe = code
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .any(|tok| tok == concat!("uns", "afe"));
        if has_unsafe {
            let mut documented = comment.contains("SAFETY:");
            let mut j = idx;
            while j > 0 {
                j -= 1;
                let (pcode, pcomment) = split_comment(lines[j]);
                if !pcode.trim().is_empty() {
                    break; // ran into code: end of the comment block
                }
                if pcomment.contains("SAFETY:") {
                    documented = true;
                    break;
                }
                if pcomment.is_empty() {
                    break; // blank line ends the block
                }
            }
            if !documented {
                report(Rule::UndocumentedUnsafe, &armed, &mut used);
            }
        }

        // grb-error-type: collect public fn signatures.
        if sig.is_none() && code_trim.starts_with("pub fn") {
            sig = Some((lineno, String::new()));
        }
        if let Some((start, acc)) = &mut sig {
            acc.push(' ');
            acc.push_str(code_trim);
            let opened = acc.contains('{') || acc.trim_end().ends_with(';');
            if opened {
                let sig_text = acc.replace("GrbResult", "");
                if sig_text.contains("-> Result<")
                    || sig_text.contains("->Result<")
                    || sig_text.contains("-> io::Result<")
                    || sig_text.contains("-> std::io::Result<")
                {
                    let start = *start;
                    if Rule::GrbErrorType.applies_to(krate) {
                        if let Some(&w) = armed.get(&Rule::GrbErrorType) {
                            used.insert((w, Rule::GrbErrorType));
                        } else {
                            out.push(Violation {
                                file: file.to_string(),
                                line: start,
                                rule: Rule::GrbErrorType,
                                snippet: lines[start - 1].trim().chars().take(120).collect(),
                            });
                        }
                    }
                }
                sig = None;
            }
        }

        if ends_statement(code) {
            armed.clear();
        }
    }
    if Rule::SpanAtKernelBoundary.applies_to(krate) {
        lint_span_boundaries(krate, file, &lines, test_start, &mut used, &mut out);
    }
    if Rule::DecisionWithoutEvent.applies_to(krate) {
        lint_decision_events(file, &lines, test_start, &mut used, &mut out);
    }
    if Rule::DrainWithoutBarrierSpan.applies_to(krate) {
        lint_drain_barriers(file, &lines, test_start, &mut used, &mut out);
    }
    if let Some(metrics) = metrics {
        if Rule::CounterWithoutMetric.applies_to(krate)
            && file.replace('\\', "/") == OBS_COUNTERS_FILE
        {
            lint_counter_metrics(file, &lines, test_start, metrics, &mut used, &mut out);
        }
    }

    // Stale-waiver sweep: every waiver site that suppressed nothing, and
    // every allow() naming no known rule.
    for (idx, rule) in waiver_sites {
        if !used.contains(&(idx, rule)) {
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::StaleWaiver,
                snippet: format!(
                    "unused `grblint: allow({})` — it suppresses no finding; remove it",
                    rule.slug()
                ),
            });
        }
    }
    for (idx, name) in unknown_names {
        out.push(Violation {
            file: file.to_string(),
            line: idx + 1,
            rule: Rule::StaleWaiver,
            snippet: format!(
                "`grblint: allow({})` names no grblint rule (known: {})",
                name,
                Rule::all()
                    .iter()
                    .filter(|r| **r != Rule::StaleWaiver)
                    .map(|r| r.slug())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
    out.sort_by(|a, b| (a.line, a.rule.slug()).cmp(&(b.line, b.rule.slug())));
    out
}

/// Whether `path` (relative, `/`-separated components) is in scope for
/// linting: `.rs` sources outside `tests/`, `benches/`, `examples/`, and
/// `target/`.
fn in_scope(rel: &Path) -> bool {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return false;
    }
    !rel.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples") | Some("target")
        )
    })
}

/// The crate directory name a workspace-relative path belongs to (`""`
/// for the root crate's own sources).
fn crate_of(rel: &Path) -> String {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    if comps.len() >= 2 && comps[0] == "crates" {
        comps[1].to_string()
    } else {
        String::new()
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Collects every in-scope `.rs` source under `root`, sorted — the
/// shared file walk for `grblint` and `check::sa` (`grbsa`), so both
/// tools analyze exactly the same file set.
pub(crate) fn collect_sources(root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        if in_scope(rel) {
            out.push(path.clone());
        }
    }
    Ok(())
}

/// Lints every in-scope source file under `root` (a workspace checkout).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_sources(root, &mut files)?;
    // Registry names for counter-without-metric. A missing registry file
    // yields an empty list, so every counter field is flagged — adding
    // counters without an export registry is exactly the drift the rule
    // exists to catch.
    let metrics = registry_metric_names(
        &fs::read_to_string(root.join(OBS_REGISTRY_FILE)).unwrap_or_default(),
    );
    let mut out = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let krate = crate_of(rel);
        let source = fs::read_to_string(&path)?;
        out.extend(lint_source_with_metrics(
            &krate,
            &rel.to_string_lossy(),
            &source,
            Some(&metrics),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_flagged_outside_obs_only() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(lint_source("exec", "x.rs", src).len(), 1);
        assert_eq!(lint_source("obs", "x.rs", src).len(), 0);
    }

    #[test]
    fn waiver_on_preceding_line_covers_statement() {
        let src = "\
// grblint: allow(relaxed-ordering) — justified.
counters()
    .wakes
    .fetch_add(1, Ordering::Relaxed);
counters().fetch_add(1, Ordering::Relaxed);
";
        let v = lint_source("exec", "x.rs", src);
        // The waiver covers the first (multi-line) statement only.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn unwrap_rules_scoped_to_core_and_sparse() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n}\n";
        assert_eq!(lint_source("core", "x.rs", src).len(), 2);
        assert_eq!(lint_source("sparse", "x.rs", src).len(), 2);
        assert_eq!(lint_source("exec", "x.rs", src).len(), 0);
        let dbg = "fn f() { debug_assert_eq!(a.last().unwrap(), b); }\n";
        assert_eq!(lint_source("core", "x.rs", dbg).len(), 0);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    fn g() { x.unwrap(); let _ = Ordering::Relaxed; }
}
";
        assert_eq!(lint_source("core", "x.rs", src).len(), 0);
    }

    #[test]
    fn grb_error_type_over_multiline_signatures() {
        let good = "pub fn f(&self) -> GrbResult<usize> {\n}\n";
        assert_eq!(lint_source("core", "x.rs", good).len(), 0);
        let bad = "pub fn f(\n    &self,\n) -> Result<usize, OtherError> {\n}\n";
        let v = lint_source("core", "x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::GrbErrorType);
        assert_eq!(v[0].line, 1);
        // Not a core file: out of scope.
        assert_eq!(lint_source("io", "x.rs", bad).len(), 0);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { std::mem::transmute(x) } }\n";
        assert_eq!(lint_source("exec", "x.rs", bad).len(), 1);
        let good = "\
fn f() {
    // SAFETY: lifetimes checked by scope join below.
    unsafe { std::mem::transmute(x) }
}
";
        assert_eq!(lint_source("exec", "x.rs", good).len(), 0);
        let inline = "fn f() { unsafe { t(x) } } // SAFETY: fine\n";
        assert_eq!(lint_source("exec", "x.rs", inline).len(), 0);
    }

    #[test]
    fn span_rule_catches_bare_kernel_entry() {
        let bad = "\
pub fn spgemm<T>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    let out = multiply(ctx, a);
    out
}
";
        let v = lint_source("sparse", "crates/sparse/src/spgemm.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SpanAtKernelBoundary);
        assert_eq!(v[0].line, 1);
        // Same file with a span: clean.
        let good = "\
pub fn spgemm<T>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::SpGEMM, ctx.id());
    multiply(ctx, a)
}
";
        assert_eq!(
            lint_source("sparse", "crates/sparse/src/spgemm.rs", good).len(),
            0
        );
        // A timeline phase also satisfies the rule (delegating wrappers).
        let phased = "\
pub fn spgemm<T>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    let _ph = graphblas_obs::timeline::phase(\"spgemm\");
    multiply(ctx, a)
}
";
        assert_eq!(
            lint_source("sparse", "crates/sparse/src/spgemm.rs", phased).len(),
            0
        );
    }

    #[test]
    fn span_rule_scoped_to_kernel_files_and_ops() {
        let bare = "pub fn helper<T>(ctx: &Context, a: &Csr<T>) -> usize {\n    a.nnz()\n}\n";
        // util.rs is not a kernel file: out of scope.
        assert_eq!(lint_source("sparse", "crates/sparse/src/util.rs", bare).len(), 0);
        // Core: only operations/ files with a &Descriptor parameter.
        let op = "\
pub fn mxm<T>(
    c: &Matrix<T>,
    desc: &Descriptor,
) -> GrbResult {
    body()
}
";
        assert_eq!(
            lint_source("core", "crates/core/src/operations/mxm.rs", op).len(),
            1
        );
        assert_eq!(lint_source("core", "crates/core/src/matrix.rs", op).len(), 0);
        // A pub fn in an operations file without &Descriptor is exempt.
        let knob = "pub fn force_direction(d: Option<Direction>) {\n    set(d);\n}\n";
        assert_eq!(
            lint_source("core", "crates/core/src/operations/mxv.rs", knob).len(),
            0
        );
    }

    #[test]
    fn span_rule_waivable_above_signature() {
        let waived = "\
// grblint: allow(span-at-kernel-boundary) — measured by its caller.
pub fn inner<T>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    multiply(ctx, a)
}
";
        assert_eq!(
            lint_source("sparse", "crates/sparse/src/spmv.rs", waived).len(),
            0
        );
    }

    #[test]
    fn decision_counter_without_event_is_flagged() {
        let bad = "\
fn choose(nnz: usize, len: usize) -> Direction {
    let d = pick(nnz, len);
    graphblas_obs::counters::record_direction_pick(d == Direction::Pull);
    d
}
";
        let v = lint_source("core", "x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DecisionWithoutEvent);
        assert_eq!(v[0].line, 3);
        // Same body with a provenance event: clean.
        let good = "\
fn choose(nnz: usize, len: usize) -> Direction {
    let d = pick(nnz, len);
    graphblas_obs::counters::record_direction_pick(d == Direction::Pull);
    graphblas_obs::events::decision_direction(\"mxv\", 0, d == Direction::Pull, 1, 2, 8);
    d
}
";
        assert_eq!(lint_source("core", "x.rs", good).len(), 0);
        // obs itself (counter definitions, self-tests) is exempt.
        assert_eq!(lint_source("obs", "x.rs", bad).len(), 0);
    }

    #[test]
    fn decision_rule_covers_workspace_checkout_and_waivers() {
        let bad = "\
pub fn checkout<T>(n: usize) -> Checkout<T> {
    let hit = try_reuse(n);
    graphblas_obs::counters::record_workspace_checkout(hit, reused);
    make(n)
}
";
        let v = lint_source("exec", "x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DecisionWithoutEvent);
        // A waiver in the comment block above the site covers it.
        let waived = "\
pub fn checkout<T>(n: usize) -> Checkout<T> {
    let hit = try_reuse(n);
    // grblint: allow(decision-without-event) — event emitted by caller.
    graphblas_obs::counters::record_workspace_checkout(hit, reused);
    make(n)
}
";
        assert_eq!(lint_source("exec", "x.rs", waived).len(), 0);
    }

    #[test]
    fn dyn_semiring_flagged_in_hot_kernel_files_only() {
        let bad = "pub fn spmv<T>(ctx: &Context, mul: &dyn Fn(&T, &T) -> T) -> T {\n    let _ph = phase(\"x\");\n    go(mul)\n}\n";
        let v = lint_source("sparse", "crates/sparse/src/spmv.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DynSemiringInHotKernel);
        // Non-kernel sparse files (operator storage) are out of scope.
        assert_eq!(
            lint_source("sparse", "crates/sparse/src/svec.rs", bad).len(),
            0
        );
        // Other crates are out of scope even for kernel-named files.
        assert_eq!(
            lint_source("core", "crates/core/src/spmv.rs", bad).len(),
            0
        );
        // Generic operator parameters are the sanctioned shape.
        let good = "pub fn spmv<T, FM: Fn(&T, &T) -> T>(ctx: &Context, mul: FM) -> T {\n    let _ph = phase(\"x\");\n    go(mul)\n}\n";
        assert_eq!(
            lint_source("sparse", "crates/sparse/src/spmv.rs", good).len(),
            0
        );
        // A waiver covers an out-of-loop callback.
        let waived = "pub fn to_csr<T>(ctx: &Context, dup: Option<&(dyn Fn(&T, &T) -> T + Sync)>) -> Csr<T> { // grblint: allow(dyn-semiring-in-hot-kernel)\n    let _ph = phase(\"x\");\n    go(dup)\n}\n";
        assert_eq!(
            lint_source("sparse", "crates/sparse/src/convert.rs", waived).len(),
            0
        );
    }

    #[test]
    fn dispatch_and_format_picks_require_events() {
        let bad = "\
fn pick(hit: bool) {
    graphblas_obs::counters::record_dispatch_pick(hit);
}
";
        let v = lint_source("core", "x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DecisionWithoutEvent);
        let bad_fmt = "\
fn pick(bitmap: bool) {
    graphblas_obs::counters::record_format_pick(bitmap);
}
";
        assert_eq!(lint_source("core", "x.rs", bad_fmt).len(), 1);
        let good = "\
fn pick(hit: bool) {
    graphblas_obs::counters::record_dispatch_pick(hit);
    graphblas_obs::events::decision_dispatch(\"mxv\", 0, hit);
}
";
        assert_eq!(lint_source("core", "x.rs", good).len(), 0);
    }

    #[test]
    fn counter_without_metric_flagged_via_registry() {
        let counters = "\
pub struct PoolCounters {
    pub covered: AtomicU64,
    pub orphan: AtomicU64,
}
";
        let metrics = vec!["grb.pool.covered".to_string()];
        let v = lint_source_with_metrics(
            "obs",
            "crates/obs/src/counters.rs",
            counters,
            Some(&metrics),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CounterWithoutMetric);
        assert_eq!(v[0].line, 3);
        assert!(v[0].snippet.contains("orphan"));
        // Only the counter-blocks file is in scope, and plain lint_source
        // (no registry in hand) skips the rule entirely.
        assert!(lint_source_with_metrics("obs", "crates/obs/src/mem.rs", counters, Some(&metrics))
            .is_empty());
        assert!(lint_source("obs", "crates/obs/src/counters.rs", counters).is_empty());
        // A waiver in the comment block above the field covers it.
        let waived = "\
pub struct PoolCounters {
    pub covered: AtomicU64,
    // grblint: allow(counter-without-metric) — internal bookkeeping.
    pub orphan: AtomicU64,
}
";
        assert!(lint_source_with_metrics(
            "obs",
            "crates/obs/src/counters.rs",
            waived,
            Some(&metrics)
        )
        .is_empty());
    }

    #[test]
    fn registry_names_extracted_from_literals_only() {
        let src = "\
const REGISTRY: &[MetricDesc] = &[
    m(\"grb.kernel.calls\", C, \"Kernel invocations over the lifetime.\"),
    m(\"grb.pool.workers\", G, \"Worker slots.\"),
];
#[cfg(test)]
mod tests {
    const NOT_A_METRIC: &str = \"grb.test.only\";
}
";
        let names = registry_metric_names(src);
        assert_eq!(names, vec!["grb.kernel.calls", "grb.pool.workers"]);
    }

    #[test]
    fn waiver_parses_multiple_rules() {
        let ws = waivers_in("// grblint: allow(no-unwrap, relaxed-ordering)");
        assert!(ws.contains(&Rule::NoUnwrap));
        assert!(ws.contains(&Rule::RelaxedOrdering));
    }

    #[test]
    fn stale_waiver_is_flagged() {
        // The waiver suppresses nothing: the statement below is clean.
        let src = "\
// grblint: allow(relaxed-ordering)
fn f() { g(); }
";
        let v = lint_source("exec", "x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::StaleWaiver);
        assert_eq!(v[0].line, 1);
        assert!(v[0].snippet.contains("relaxed-ordering"));
    }

    #[test]
    fn used_waiver_is_not_stale() {
        let src = "\
// grblint: allow(relaxed-ordering)
fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }
";
        assert_eq!(lint_source("exec", "x.rs", src).len(), 0);
    }

    #[test]
    fn unknown_waiver_name_is_flagged() {
        let src = "// grblint: allow(no-such-rule)\nfn f() {}\n";
        let v = lint_source("exec", "x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::StaleWaiver);
        assert!(v[0].snippet.contains("no-such-rule"));
    }

    #[test]
    fn doc_comments_never_arm_waivers() {
        // Doc prose describing the syntax is neither a waiver nor stale;
        // the violation on the next line is still reported.
        let src = "\
/// Waive with `grblint: allow(relaxed-ordering)` above the site.
fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }
";
        let v = lint_source("exec", "x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RelaxedOrdering);
    }

    #[test]
    fn used_body_pass_waivers_are_not_stale() {
        // A span waiver that fires must not re-surface as stale.
        let waived = "\
// grblint: allow(span-at-kernel-boundary) — measured by its caller.
pub fn inner<T>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    multiply(ctx, a)
}
";
        assert_eq!(
            lint_source("sparse", "crates/sparse/src/spmv.rs", waived).len(),
            0
        );
        // The same waiver above a function that *has* a span is stale.
        let stale = "\
// grblint: allow(span-at-kernel-boundary)
pub fn inner<T>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    let sp = kernel_span(1);
    multiply(ctx, a)
}
";
        let v = lint_source("sparse", "crates/sparse/src/spmv.rs", stale);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::StaleWaiver);
    }
}
