//! `grblint` — the repo-specific lint pass for the graphblas workspace.
//!
//! Usage:
//!
//! ```text
//! grblint [ROOT]        lint the workspace at ROOT (default: .)
//! grblint --json [ROOT] emit findings as graphblas-check/findings/v1 JSON
//! grblint --list-rules  print the rules and exit
//! ```
//!
//! Exits 0 when the tree is clean, 1 when violations were found, 2 on
//! usage or I/O errors. Run it via `scripts/check.sh` or directly with
//! `cargo run -p graphblas-check --bin grblint`.

use std::path::PathBuf;
use std::process::ExitCode;

use graphblas_check::lint::{lint_workspace, Rule};
use graphblas_check::report::{findings_json, JsonFinding};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: grblint [--json] [ROOT] | grblint --list-rules");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for r in Rule::all() {
            println!("{}", r.slug());
        }
        return ExitCode::SUCCESS;
    }
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    if args.len() > 1 {
        eprintln!("usage: grblint [--json] [ROOT] | grblint --list-rules");
        return ExitCode::from(2);
    }
    let root = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match lint_workspace(&root) {
        Ok(violations) => {
            if json {
                let findings: Vec<JsonFinding> = violations
                    .iter()
                    .map(|v| JsonFinding {
                        rule: v.rule.slug().to_string(),
                        file: v.file.clone(),
                        line: v.line,
                        message: v.to_string(),
                        witness: v.snippet.clone(),
                    })
                    .collect();
                print!("{}", findings_json("grblint", &findings));
            } else if violations.is_empty() {
                println!("grblint: clean ({} rules)", Rule::all().len());
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("grblint: {} violation(s)", violations.len());
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("grblint: error scanning {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
