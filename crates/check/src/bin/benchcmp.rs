//! `benchcmp` — compare two kernel benchmark baselines and fail on
//! regressions.
//!
//! Usage:
//!
//! ```text
//! benchcmp OLD_FILE NEW_FILE [--smoke-tolerant]
//! ```
//!
//! Compares every shared `median_secs` workload and every shared
//! `kernels.<k>.p99_ns` tail between the two `graphblas-bench/kernels/*`
//! baselines. Strict mode (the EXPERIMENTS.md protocol for full-scale
//! baselines) fails on >25% median or >25% p99 growth. `--smoke-tolerant`
//! (what `scripts/bench.sh --compare --smoke` uses in CI) widens the gate
//! to >100% median / >200% p99, skips sub-noise-floor values, and treats
//! a scale/smoke shape mismatch as a skip rather than an error.
//!
//! Exits 0 when no gated metric regressed, 1 on regression or malformed
//! baselines, 2 on usage or I/O errors.

use std::process::ExitCode;

use graphblas_check::benchcmp::{self, Profile};

fn usage() {
    eprintln!("usage: benchcmp OLD_FILE NEW_FILE [--smoke-tolerant]");
}

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut profile = Profile::strict();
    let mut profile_name = "strict";
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--smoke-tolerant" => {
                profile = Profile::smoke_tolerant();
                profile_name = "smoke-tolerant";
            }
            _ => files.push(arg),
        }
    }
    let [old_file, new_file] = files.as_slice() else {
        usage();
        return ExitCode::from(2);
    };
    let read = |f: &str| match std::fs::read_to_string(f) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("benchcmp: cannot read {f}: {e}");
            None
        }
    };
    let (Some(old_text), Some(new_text)) = (read(old_file), read(new_file)) else {
        return ExitCode::from(2);
    };
    let cmp = match benchcmp::compare(&old_text, &new_text, &profile) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("benchcmp: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("benchcmp ({profile_name}): {old_file} -> {new_file}");
    for note in &cmp.notes {
        println!("  {note}");
    }
    for r in &cmp.regressions {
        eprintln!("  REGRESSION {r}");
    }
    if cmp.passed() {
        println!(
            "benchcmp: OK ({} metric(s) compared, none regressed)",
            cmp.compared
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "benchcmp: FAILED ({} regression(s) of {} metric(s))",
            cmp.regressions.len(),
            cmp.compared
        );
        ExitCode::FAILURE
    }
}
