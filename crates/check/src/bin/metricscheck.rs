//! `metricscheck` — validate a `GRB_METRICS` text exposition.
//!
//! Usage:
//!
//! ```text
//! metricscheck FILE [--require NAME]... [--min-families N]
//! ```
//!
//! Parses FILE with the independent exposition reader in
//! `graphblas_check::metrics` and re-checks the writer's invariants
//! (HELP/TYPE headers, label escaping, no duplicate label sets,
//! non-negative counters). Each `--require NAME` additionally asserts
//! that family NAME (exposition spelling, e.g. `grb_pool_utilization`)
//! is present with at least one sample; `--min-families N` asserts a
//! floor on the family count.
//!
//! Exits 0 on a valid exposition with all assertions met, 1 on a
//! malformed or insufficient one, 2 on usage or I/O errors. Run by
//! `scripts/check.sh` against the smoke bench's metrics dump, or
//! directly:
//!
//! ```text
//! GRB_METRICS_DUMP=metrics.prom cargo run -p bench --bin kernels -- --smoke
//! cargo run -p graphblas-check --bin metricscheck -- metrics.prom \
//!     --require grb_kernel_rate --require grb_pool_utilization
//! ```

use std::process::ExitCode;

use graphblas_check::metrics;

fn main() -> ExitCode {
    const USAGE: &str = "usage: metricscheck FILE [--require NAME]... [--min-families N]";
    let mut file = None;
    let mut required: Vec<String> = Vec::new();
    let mut min_families = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--require" => match args.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--min-families" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => min_families = n,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            _ if file.is_none() => file = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("metricscheck: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let summary = match metrics::validate(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("metricscheck: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "metricscheck: {file}: {} families, {} samples",
        summary.families.len(),
        summary.total_samples()
    );
    let mut missing = Vec::new();
    if summary.families.len() < min_families {
        missing.push(format!(
            "at least {min_families} families (saw {})",
            summary.families.len()
        ));
    }
    for name in &required {
        match summary.family(name) {
            Some(f) if !f.samples.is_empty() => {}
            Some(_) => missing.push(format!("samples under family {name}")),
            None => missing.push(format!("family {name}")),
        }
    }
    if !missing.is_empty() {
        for m in &missing {
            eprintln!("metricscheck: {file}: missing {m}");
        }
        let names: Vec<&str> = summary.families.iter().map(|f| f.name.as_str()).collect();
        eprintln!("metricscheck: families seen: {}", names.join(", "));
        return ExitCode::FAILURE;
    }
    if !required.is_empty() {
        println!("metricscheck: all {} required families present", required.len());
    }
    ExitCode::SUCCESS
}
