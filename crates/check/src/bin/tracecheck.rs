//! `tracecheck` — validate a `GRB_TRACE` Chrome-trace JSON file.
//!
//! Usage:
//!
//! ```text
//! tracecheck FILE [--require-kernels]
//! ```
//!
//! Parses FILE with the zero-dependency reader in `graphblas_check::trace`
//! and replays every thread's `B`/`E` stream to prove the pairs balance
//! and nest. With `--require-kernels` it additionally asserts the trace
//! came from a real multi-threaded kernel run: at least two distinct
//! thread ids, phase names under both `spgemm.` and `mxv.`, and a
//! `thread_sort_index` metadata record for every named thread track (the
//! deterministic Perfetto ordering, workers laid out by pool index).
//!
//! Exits 0 on a valid trace, 1 on a malformed or insufficient one, 2 on
//! usage or I/O errors. Run by `scripts/check.sh` against the smoke
//! bench's trace, or directly:
//!
//! ```text
//! GRB_TRACE=trace.json cargo run -p bench --bin kernels -- --smoke
//! cargo run -p graphblas-check --bin tracecheck -- trace.json --require-kernels
//! ```

use std::process::ExitCode;

use graphblas_check::trace;

fn main() -> ExitCode {
    let mut file = None;
    let mut require_kernels = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!("usage: tracecheck FILE [--require-kernels]");
                return ExitCode::SUCCESS;
            }
            "--require-kernels" => require_kernels = true,
            _ if file.is_none() => file = Some(arg),
            _ => {
                eprintln!("usage: tracecheck FILE [--require-kernels]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: tracecheck FILE [--require-kernels]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let summary = match trace::validate(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracecheck: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "tracecheck: {file}: {} regions on {} thread(s), {} distinct names, max depth {}",
        summary.regions,
        summary.threads.len(),
        summary.names.len(),
        summary.max_depth
    );
    if require_kernels {
        let mut missing = Vec::new();
        if summary.threads.len() < 2 {
            missing.push("at least 2 distinct thread ids".to_string());
        }
        for prefix in ["spgemm.", "mxv."] {
            if !summary.has_name_prefix(prefix) {
                missing.push(format!("a \"{prefix}*\" phase"));
            }
        }
        for (tid, name) in &summary.thread_names {
            if !summary.thread_sort_indices.iter().any(|(t, _)| t == tid) {
                missing.push(format!(
                    "a thread_sort_index record for tid {tid} (\"{name}\")"
                ));
            }
        }
        // Worker tracks must be ordered by pool index: sort indices of
        // grb-worker-<i> tracks strictly increase with i.
        let mut workers: Vec<(u64, u64)> = summary
            .thread_names
            .iter()
            .filter_map(|(tid, name)| {
                let i = name.strip_prefix("grb-worker-")?.parse::<u64>().ok()?;
                let idx = summary
                    .thread_sort_indices
                    .iter()
                    .find(|(t, _)| t == tid)
                    .map(|(_, s)| *s)?;
                Some((i, idx))
            })
            .collect();
        workers.sort_unstable();
        if workers.windows(2).any(|w| w[0].1 >= w[1].1) {
            missing.push("monotone sort indices over grb-worker-* tracks".to_string());
        }
        if !missing.is_empty() {
            for m in &missing {
                eprintln!("tracecheck: {file}: missing {m}");
            }
            eprintln!(
                "tracecheck: names seen: {}",
                summary.names.join(", ")
            );
            return ExitCode::FAILURE;
        }
        println!("tracecheck: kernel coverage OK (spgemm.*, mxv.*, multi-thread)");
    }
    ExitCode::SUCCESS
}
