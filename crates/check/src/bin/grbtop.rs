//! `grbtop` — live terminal view of a `GRB_METRICS_ADDR` endpoint.
//!
//! Usage:
//!
//! ```text
//! grbtop [--addr HOST:PORT] [--interval SECS] [--once]
//! ```
//!
//! Polls the scrape endpoint a graphblas process exposes when started
//! with `GRB_METRICS_ADDR`, validates each exposition with
//! `graphblas_check::metrics`, and renders a compact frame: per-kernel
//! call counts, sampler-window rates, and rolling p99 latencies, plus
//! pool utilization / queue depth and memory high-water marks. The
//! rates come straight from the endpoint's `grb_kernel_rate` family —
//! `grbtop` does no windowing of its own, so a single `--once` frame is
//! as live as a polling session.
//!
//! `--addr` defaults to the `GRB_METRICS_ADDR` environment variable so
//! the same shell that launched the workload can run `grbtop` with no
//! arguments. Exits 0 after a clean `--once` frame (or on SIGINT via
//! the default handler), 1 when the endpoint is unreachable or serves
//! an invalid exposition, 2 on usage errors.
//!
//! ```text
//! GRB_METRICS_ADDR=127.0.0.1:9464 cargo run -p bench --bin kernels &
//! GRB_METRICS_ADDR=127.0.0.1:9464 cargo run -p graphblas-check --bin grbtop
//! ```

use std::process::ExitCode;
use std::time::Duration;

use graphblas_check::metrics::{self, MetricsSummary};

fn fmt_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{v:.0} {}", UNITS[unit])
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.2}M/s", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k/s", r / 1e3)
    } else {
        format!("{r:.1}/s")
    }
}

/// Per-kernel values of a labeled family, keyed by the `kernel` label.
fn by_kernel(summary: &MetricsSummary, family: &str) -> Vec<(String, f64)> {
    summary
        .family(family)
        .map(|f| {
            f.samples
                .iter()
                .filter_map(|s| Some((s.label("kernel")?.to_string(), s.value)))
                .collect()
        })
        .unwrap_or_default()
}

fn lookup(rows: &[(String, f64)], op: &str) -> f64 {
    rows.iter()
        .find(|(o, _)| o == op)
        .map(|(_, v)| *v)
        .unwrap_or(0.0)
}

fn render_frame(summary: &MetricsSummary, addr: &str, frame: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "grbtop — {addr} — frame {frame} — {} families\n\n",
        summary.families.len()
    ));

    let calls = by_kernel(summary, "grb_kernel_calls");
    let rates = by_kernel(summary, "grb_kernel_rate");
    let p99s = by_kernel(summary, "grb_kernel_rolling_p99_ns");
    let mut ops: Vec<&String> = calls.iter().map(|(o, _)| o).collect();
    // Busiest kernels first; idle ones keep registry order at the bottom.
    ops.sort_by(|a, b| {
        lookup(&rates, b)
            .partial_cmp(&lookup(&rates, a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>14}\n",
        "KERNEL", "CALLS", "RATE", "ROLLING P99"
    ));
    for op in ops {
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>14}\n",
            op,
            lookup(&calls, op) as u64,
            fmt_rate(lookup(&rates, op)),
            fmt_ns(lookup(&p99s, op)),
        ));
    }

    let scalar = |name: &str| summary.scalar(name).unwrap_or(0.0);
    let wait = scalar("grb_pool_task_wait_ns");
    let run = scalar("grb_pool_task_run_ns");
    let wait_frac = if wait + run > 0.0 { wait / (wait + run) } else { 0.0 };
    out.push_str(&format!(
        "\npool   workers {}  util {:.0}%  queue {} (max {})  tasks {}  wait share {:.0}%\n",
        scalar("grb_pool_workers") as u64,
        scalar("grb_pool_utilization") * 100.0,
        scalar("grb_pool_queue_depth") as u64,
        scalar("grb_pool_queue_depth_max") as u64,
        scalar("grb_pool_tasks_completed") as u64,
        wait_frac * 100.0,
    ));
    out.push_str(&format!(
        "mem    containers {} live / {} high   workspaces {} live / {} high\n",
        fmt_bytes(scalar("grb_mem_container_live_bytes")),
        fmt_bytes(scalar("grb_mem_container_high_bytes")),
        fmt_bytes(scalar("grb_mem_workspace_live_bytes")),
        fmt_bytes(scalar("grb_mem_workspace_high_bytes")),
    ));
    out.push_str(&format!(
        "rates  {} moved   drains {}   sampler {} samples / {} scrapes\n",
        fmt_bytes(scalar("grb_rate_bytes")).replace(' ', "") + "/s",
        fmt_rate(scalar("grb_pending_drain_rate")),
        scalar("grb_sampler_samples") as u64,
        scalar("grb_sampler_scrapes") as u64,
    ));
    out
}

fn main() -> ExitCode {
    const USAGE: &str = "usage: grbtop [--addr HOST:PORT] [--interval SECS] [--once]";
    let mut addr = std::env::var("GRB_METRICS_ADDR").ok().filter(|s| !s.is_empty());
    let mut interval = Duration::from_secs(2);
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--once" => once = true,
            "--addr" => match args.next() {
                Some(a) => addr = Some(a),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--interval" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => interval = Duration::from_secs_f64(s),
                _ => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("grbtop: no --addr and GRB_METRICS_ADDR is unset");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let mut frame = 0u64;
    loop {
        frame += 1;
        let body = match metrics::scrape(&addr) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("grbtop: cannot scrape {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let summary = match metrics::validate(&body) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("grbtop: {addr}: invalid exposition: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !once {
            // Clear screen and home the cursor between frames.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_frame(&summary, &addr, frame));
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}
