//! `grbexplain` — render and gate a `GRB_EXPLAIN` decision-provenance
//! export.
//!
//! Usage:
//!
//! ```text
//! grbexplain FILE [--last N] [--assert reason=<code>,min=<k>]...
//! ```
//!
//! Parses FILE with the independent reader in `graphblas_check::explain`,
//! re-checks the explain/v1 structural invariants (schema, strictly
//! increasing `seq`, aggregate counts able to account for every retained
//! event), prints the per-reason aggregates, a per-operation rollup, and
//! a narrative of the last N decisions (default 20), then evaluates every
//! `--assert` gate. Reasons may be literal codes (`direction-pull`,
//! `fuse-flush`, …) or aliases summing a family (`direction-pick`,
//! `workspace-checkout`, `fuse`).
//!
//! Exits 0 on a valid document with all asserts holding, 1 on a malformed
//! document or failed assert, 2 on usage or I/O errors. Run by
//! `scripts/check.sh` against the smoke bench's export, or directly:
//!
//! ```text
//! GRB_EXPLAIN=explain.json cargo run -p bench --bin kernels -- --smoke
//! cargo run -p graphblas-check --bin grbexplain -- explain.json \
//!     --assert reason=direction-pick,min=1 --assert reason=fuse,min=1
//! ```

use std::process::ExitCode;

use graphblas_check::explain::{self, Assert};

fn usage() {
    eprintln!("usage: grbexplain FILE [--last N] [--assert reason=<code>,min=<k>]...");
}

fn main() -> ExitCode {
    let mut file = None;
    let mut last_n = 20usize;
    let mut asserts: Vec<Assert> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--last" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    usage();
                    return ExitCode::from(2);
                };
                last_n = n;
            }
            "--assert" => {
                let Some(spec) = args.next() else {
                    usage();
                    return ExitCode::from(2);
                };
                match Assert::parse(&spec) {
                    Ok(a) => asserts.push(a),
                    Err(e) => {
                        eprintln!("grbexplain: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            _ if file.is_none() => file = Some(arg),
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        usage();
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("grbexplain: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match explain::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("grbexplain: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", explain::render(&doc, last_n));
    let mut failed = false;
    for a in &asserts {
        match a.check(&doc) {
            Ok(got) => println!("assert ok: reason {} count {got} >= {}", a.reason, a.min),
            Err(e) => {
                eprintln!("grbexplain: {file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
