//! `grbsa` — source-model static analysis for the graphblas workspace:
//! lock-order cycle detection, condvar wait-while-holding, and the
//! atomics-ordering audit against the declared protocol table.
//!
//! Usage:
//!
//! ```text
//! grbsa [ROOT]          analyze the workspace at ROOT (default: .)
//! grbsa --json [ROOT]   emit findings as graphblas-check/findings/v1 JSON
//! grbsa --verbose       also print model statistics and the lock graph
//! grbsa --list-rules    print the rules and exit
//! grbsa --protocols     print the atomics protocol table and exit
//! ```
//!
//! Exits 0 when no unwaived findings exist, 1 otherwise, 2 on usage or
//! I/O errors. Waive a finding in-source with a block-scoped
//! `// grbsa: allow(rule-slug)`; classify a Relaxed site with
//! `// grbsa: protocol(name)`. Stale annotations are themselves
//! findings.

use std::path::PathBuf;
use std::process::ExitCode;

use graphblas_check::report::{findings_json, JsonFinding};
use graphblas_check::sa::{self, atomics, Rule};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: grbsa [--json] [--verbose] [ROOT] | grbsa --list-rules | grbsa --protocols"
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for r in Rule::all() {
            println!("{}", r.slug());
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--protocols") {
        for (name, relaxed_ok) in atomics::PROTOCOLS {
            println!(
                "{name}: Relaxed {}",
                if *relaxed_ok { "sanctioned" } else { "forbidden" }
            );
        }
        return ExitCode::SUCCESS;
    }
    let json = args.iter().any(|a| a == "--json");
    let verbose = args.iter().any(|a| a == "--verbose");
    args.retain(|a| a != "--json" && a != "--verbose");
    if args.len() > 1 {
        eprintln!("usage: grbsa [--json] [--verbose] [ROOT]");
        return ExitCode::from(2);
    }
    let root = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let analysis = match sa::analyze_root(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("grbsa: error scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        let findings: Vec<JsonFinding> = analysis
            .findings
            .iter()
            .map(|f| JsonFinding {
                rule: f.rule.slug().to_string(),
                file: f.file.clone(),
                line: f.line,
                message: f.message.clone(),
                witness: f.witness.clone(),
            })
            .collect();
        print!("{}", findings_json("grbsa", &findings));
    } else {
        if verbose {
            let s = &analysis.stats;
            println!(
                "grbsa model: {} files, {} fns, {} locks, {} condvars, {} atomics, \
                 {} acquisitions, {} atomic sites, calls {} resolved / {} skipped",
                s.files,
                s.fns,
                s.locks,
                s.condvars,
                s.atomics,
                s.acquire_events,
                s.atomic_sites,
                s.calls_resolved,
                s.calls_skipped
            );
            for e in &analysis.graph.edges {
                let via = if e.via.is_empty() {
                    String::new()
                } else {
                    format!(" via {}", e.via.join(" -> "))
                };
                println!(
                    "  lock-order: {} -> {} ({}:{} in {}{})",
                    e.from, e.to, e.file, e.line, e.in_fn, via
                );
            }
        }
        for f in &analysis.findings {
            println!("{}", sa::render(f));
        }
        if analysis.findings.is_empty() {
            println!(
                "grbsa: clean ({} rules, {} waived)",
                Rule::all().len(),
                analysis.waived
            );
        } else {
            println!("grbsa: {} finding(s)", analysis.findings.len());
        }
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
