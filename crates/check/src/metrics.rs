//! Prometheus text-exposition checking for `GRB_METRICS` output.
//!
//! `graphblas_obs::export` renders the live metric registry in the
//! Prometheus text exposition format (v0.0.4) — over the scrape endpoint
//! when `GRB_METRICS_ADDR` is set, or as a one-shot file dump with
//! `GRB_METRICS_DUMP`. This module is the independent reader for that
//! format: a line-oriented parser plus a validator that re-checks the
//! invariants the writer promises:
//!
//! * every family is announced with both a `# HELP` and a `# TYPE` line
//!   before its first sample, the kind is `counter` or `gauge`, and no
//!   family is announced twice;
//! * sample lines carry the announced family name, legal metric/label
//!   identifiers, properly escaped label values, and a parseable value
//!   (with `+Inf`/`-Inf`/`NaN` spelled the Prometheus way);
//! * no two samples of a family repeat the same label set, and counter
//!   samples are finite and non-negative.
//!
//! Used by the `metricscheck` binary in `scripts/check.sh` to gate the
//! smoke-bench metrics dump, by `grbtop` to render live frames, and by
//! `tests/metrics_format.rs` against expositions the obs crate actually
//! writes. The parser deliberately shares no code with
//! `graphblas_obs::export` (writer) — a shared bug could not cancel out.

use std::collections::BTreeSet;
use std::fmt;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed sample line: resolved label pairs plus the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label pairs in document order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `name`, when present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One metric family: the `# HELP`/`# TYPE` header plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Exposition (mangled) metric name, e.g. `grb_pool_queue_depth`.
    pub name: String,
    /// `counter` or `gauge`.
    pub kind: String,
    /// Help text with exposition escapes resolved.
    pub help: String,
    /// Samples in document order.
    pub samples: Vec<Sample>,
}

/// What a valid exposition contained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSummary {
    /// Families in document order.
    pub families: Vec<Family>,
}

impl MetricsSummary {
    /// The family named `name`, when present.
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Total sample lines across all families.
    pub fn total_samples(&self) -> usize {
        self.families.iter().map(|f| f.samples.len()).sum()
    }

    /// The single value of an unlabeled family, when present.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        let fam = self.family(name)?;
        match fam.samples.as_slice() {
            [s] if s.labels.is_empty() => Some(s.value),
            _ => None,
        }
    }
}

/// Why an exposition failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// A line failed to parse (1-based line number).
    Line { line: usize, what: String },
    /// The document parsed but breaks a cross-line invariant.
    Structure(String),
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::Line { line, what } => write!(f, "line {line}: {what}"),
            MetricsError::Structure(s) => write!(f, "not a metrics exposition: {s}"),
        }
    }
}

fn line_err(line: usize, what: impl Into<String>) -> MetricsError {
    MetricsError::Line {
        line,
        what: what.into(),
    }
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if is_name_start(c)) && chars.all(is_name_char)
}

/// Resolve `\\`, `\n` (and for label values `\"`) escapes.
fn unescape(s: &str, line: usize, in_label: bool) -> Result<String, MetricsError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('"') if in_label => out.push('"'),
            Some(c) => return Err(line_err(line, format!("bad escape \\{c}"))),
            None => return Err(line_err(line, "trailing backslash")),
        }
    }
    Ok(out)
}

fn parse_value(tok: &str, line: usize) -> Result<f64, MetricsError> {
    match tok {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => tok
            .parse::<f64>()
            .map_err(|_| line_err(line, format!("bad value {tok:?}"))),
    }
}

/// Parse one `{label="value",...}` body (without the braces).
fn parse_labels(body: &str, line: usize) -> Result<Vec<(String, String)>, MetricsError> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| line_err(line, "label without ="))?;
        let name = rest[..eq].trim();
        if !valid_name(name) {
            return Err(line_err(line, format!("bad label name {name:?}")));
        }
        rest = rest[eq + 1..].trim_start();
        let Some(tail) = rest.strip_prefix('"') else {
            return Err(line_err(line, "label value not quoted"));
        };
        // Find the closing quote, skipping escaped characters.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in tail.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let Some(end) = end else {
            return Err(line_err(line, "unterminated label value"));
        };
        let value = unescape(&tail[..end], line, true)?;
        labels.push((name.to_string(), value));
        rest = tail[end + 1..].trim_start();
        if let Some(t) = rest.strip_prefix(',') {
            rest = t.trim_start();
        } else if !rest.is_empty() {
            return Err(line_err(line, "junk after label value"));
        }
    }
    Ok(labels)
}

/// Parse and validate a text exposition.
pub fn validate(text: &str) -> Result<MetricsSummary, MetricsError> {
    let mut summary = MetricsSummary::default();
    // Pending header state: HELP seen for a name, awaiting TYPE.
    let mut pending_help: Option<(String, String)> = None;
    let mut seen_label_sets: BTreeSet<String> = BTreeSet::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, help) = rest
                    .split_once(' ')
                    .map(|(n, h)| (n, h))
                    .unwrap_or((rest, ""));
                if !valid_name(name) {
                    return Err(line_err(lineno, format!("bad metric name {name:?}")));
                }
                if summary.family(name).is_some() {
                    return Err(MetricsError::Structure(format!(
                        "family {name} announced twice (line {lineno})"
                    )));
                }
                if let Some((prev, _)) = &pending_help {
                    return Err(MetricsError::Structure(format!(
                        "# HELP {prev} has no matching # TYPE (line {lineno})"
                    )));
                }
                pending_help = Some((name.to_string(), unescape(help, lineno, false)?));
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let Some((name, kind)) = rest.split_once(' ') else {
                    return Err(line_err(lineno, "# TYPE without a kind"));
                };
                let kind = kind.trim();
                if !matches!(kind, "counter" | "gauge") {
                    return Err(line_err(lineno, format!("unsupported kind {kind:?}")));
                }
                let Some((help_name, help)) = pending_help.take() else {
                    return Err(MetricsError::Structure(format!(
                        "# TYPE {name} without a preceding # HELP (line {lineno})"
                    )));
                };
                if help_name != name {
                    return Err(MetricsError::Structure(format!(
                        "# TYPE {name} follows # HELP {help_name} (line {lineno})"
                    )));
                }
                summary.families.push(Family {
                    name: name.to_string(),
                    kind: kind.to_string(),
                    help,
                    samples: Vec::new(),
                });
            }
            // Other comment lines are legal and ignored.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .char_indices()
            .find(|&(_, c)| !is_name_char(c))
            .map(|(i, _)| i)
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_name(name) {
            return Err(line_err(lineno, format!("bad sample name {name:?}")));
        }
        let mut rest = &line[name_end..];
        let mut labels = Vec::new();
        if let Some(tail) = rest.strip_prefix('{') {
            let Some(close) = tail.rfind('}') else {
                return Err(line_err(lineno, "unterminated label set"));
            };
            labels = parse_labels(&tail[..close], lineno)?;
            rest = &tail[close + 1..];
        }
        let mut toks = rest.split_ascii_whitespace();
        let Some(value_tok) = toks.next() else {
            return Err(line_err(lineno, "sample without a value"));
        };
        let value = parse_value(value_tok, lineno)?;
        if let Some(ts) = toks.next() {
            // Optional millisecond timestamp; our writer never emits one
            // but the format allows it.
            if ts.parse::<i64>().is_err() {
                return Err(line_err(lineno, format!("bad timestamp {ts:?}")));
            }
        }
        if toks.next().is_some() {
            return Err(line_err(lineno, "junk after sample value"));
        }

        let Some(fam) = summary.families.iter_mut().find(|f| f.name == name) else {
            return Err(MetricsError::Structure(format!(
                "sample for unannounced family {name} (line {lineno})"
            )));
        };
        if fam.kind == "counter" && !(value >= 0.0 && value.is_finite()) {
            return Err(MetricsError::Structure(format!(
                "counter {name} has non-monotone-safe value {value} (line {lineno})"
            )));
        }
        let key = {
            let mut sorted: Vec<_> = labels
                .iter()
                .map(|(k, v)| format!("{k}\u{1}{v}"))
                .collect();
            sorted.sort_unstable();
            format!("{name}\u{2}{}", sorted.join("\u{1}"))
        };
        if !seen_label_sets.insert(key) {
            return Err(MetricsError::Structure(format!(
                "duplicate sample for {name} with the same label set (line {lineno})"
            )));
        }
        fam.samples.push(Sample { labels, value });
    }
    if let Some((prev, _)) = pending_help {
        return Err(MetricsError::Structure(format!(
            "# HELP {prev} has no matching # TYPE (end of input)"
        )));
    }
    Ok(summary)
}

// --- scraping --------------------------------------------------------------

/// Fetch `/metrics` from a live `GRB_METRICS_ADDR` endpoint over plain
/// HTTP/1.1 and return the response body. Used by `grbtop` and the bench
/// scrape test; std-only on purpose.
pub fn scrape(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response without header/body separator",
        ));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("non-200 response: {status}"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP grb_kernel_calls Kernel invocations.\n\
# TYPE grb_kernel_calls counter\n\
grb_kernel_calls{op=\"spgemm\"} 12\n\
grb_kernel_calls{op=\"mxv\"} 3\n\
# HELP grb_pool_utilization Fraction of worker time spent running tasks.\n\
# TYPE grb_pool_utilization gauge\n\
grb_pool_utilization 0.5\n";

    #[test]
    fn good_exposition_parses() {
        let s = validate(GOOD).expect("valid");
        assert_eq!(s.families.len(), 2);
        assert_eq!(s.total_samples(), 3);
        let calls = s.family("grb_kernel_calls").expect("family");
        assert_eq!(calls.kind, "counter");
        assert_eq!(calls.samples[0].label("op"), Some("spgemm"));
        assert_eq!(calls.samples[1].value, 3.0);
        assert_eq!(s.scalar("grb_pool_utilization"), Some(0.5));
        assert_eq!(s.scalar("grb_kernel_calls"), None, "labeled family");
    }

    #[test]
    fn label_escapes_round_trip() {
        let text = "# HELP m Help with \\\\ and \\n newline.\n# TYPE m gauge\nm{ctx=\"a\\\"b\\\\c\\nd\"} 1\n";
        let s = validate(text).expect("valid");
        assert_eq!(s.families[0].help, "Help with \\ and \n newline.");
        assert_eq!(s.families[0].samples[0].label("ctx"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn special_values_and_timestamps_parse() {
        let text = "# HELP g G.\n# TYPE g gauge\ng{a=\"1\"} +Inf\ng{a=\"2\"} NaN 1700000000000\ng 2e3\n";
        let s = validate(text).expect("valid");
        assert_eq!(s.families[0].samples[0].value, f64::INFINITY);
        assert!(s.families[0].samples[1].value.is_nan());
        assert_eq!(s.families[0].samples[2].value, 2000.0);
    }

    #[test]
    fn structural_violations_fail() {
        // Sample before any announcement.
        assert!(matches!(
            validate("loose_metric 1\n"),
            Err(MetricsError::Structure(_))
        ));
        // TYPE without HELP.
        assert!(matches!(
            validate("# TYPE m counter\nm 1\n"),
            Err(MetricsError::Structure(_))
        ));
        // HELP without TYPE.
        assert!(matches!(
            validate("# HELP m M.\n"),
            Err(MetricsError::Structure(_))
        ));
        // Family announced twice.
        let twice = "# HELP m M.\n# TYPE m counter\n# HELP m M.\n# TYPE m counter\n";
        assert!(matches!(validate(twice), Err(MetricsError::Structure(_))));
        // Duplicate label set.
        let dup = "# HELP m M.\n# TYPE m counter\nm{a=\"x\"} 1\nm{a=\"x\"} 2\n";
        assert!(matches!(validate(dup), Err(MetricsError::Structure(_))));
        // Negative counter.
        let neg = "# HELP m M.\n# TYPE m counter\nm -1\n";
        assert!(matches!(validate(neg), Err(MetricsError::Structure(_))));
    }

    #[test]
    fn line_violations_fail() {
        for bad in [
            "# HELP m M.\n# TYPE m histogram\nm 1\n",
            "# HELP m M.\n# TYPE m gauge\nm{a=unquoted} 1\n",
            "# HELP m M.\n# TYPE m gauge\nm{a=\"open} 1\n",
            "# HELP m M.\n# TYPE m gauge\nm notanumber\n",
            "# HELP m M.\n# TYPE m gauge\nm 1 2 3\n",
            "# HELP 0bad M.\n# TYPE 0bad gauge\n",
            "# HELP m bad \\q escape.\n# TYPE m gauge\n",
        ] {
            assert!(
                matches!(validate(bad), Err(MetricsError::Line { .. })),
                "expected line error: {bad:?}"
            );
        }
    }

    #[test]
    fn blank_lines_and_other_comments_are_ignored() {
        let text = "\n# produced by graphblas-obs\n# HELP m M.\n# TYPE m gauge\n\nm 1\n# EOF\n";
        let s = validate(text).expect("valid");
        assert_eq!(s.total_samples(), 1);
    }
}
