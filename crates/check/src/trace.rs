//! Chrome-trace well-formedness checking for `GRB_TRACE` output.
//!
//! `graphblas_obs::timeline` exports per-thread timelines as Chrome-trace
//! / Perfetto `trace_event` JSON. This module is the independent reader
//! for that format — a minimal zero-dependency JSON parser plus a
//! validator that re-checks the invariants the exporter promises:
//!
//! * the document is valid JSON (full string-escape handling included),
//!   shaped `{"traceEvents": [...]}`;
//! * every event carries `ph`, `pid`, `tid`; duration events (`B`/`E`)
//!   also carry `name` and a numeric `ts`;
//! * per thread, `B`/`E` pairs are balanced and properly nested (an `E`
//!   never closes a region that is not the top of that thread's stack),
//!   with non-negative durations;
//! * `M`etadata `thread_name` records label the tids, and
//!   `thread_sort_index` records (when present) carry a numeric
//!   `args.sort_index` — the exporter's deterministic Perfetto track
//!   order — at most one per tid.
//!
//! Used by the `tracecheck` binary in `scripts/check.sh` to gate the
//! smoke-bench trace, and by `tests/trace_format.rs` against traces the
//! obs crate actually writes. The parser deliberately shares no code with
//! `graphblas_obs::json` (writer) — a shared bug could not cancel out.

use std::collections::BTreeSet;
use std::fmt;

// --- minimal JSON value + parser ------------------------------------------

/// A parsed JSON value (object keys keep document order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Why a trace failed validation. `Json` is a syntax-level failure (with
/// a byte offset); the others are structural.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The document is not valid JSON.
    Json { pos: usize, what: String },
    /// The document parsed but is not a Chrome-trace object.
    Structure(String),
    /// A thread's `B`/`E` events do not pair up.
    Unbalanced { tid: u64, detail: String },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json { pos, what } => write!(f, "invalid JSON at byte {pos}: {what}"),
            TraceError::Structure(s) => write!(f, "not a Chrome trace: {s}"),
            TraceError::Unbalanced { tid, detail } => {
                write!(f, "unbalanced events on tid {tid}: {detail}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> TraceError {
        TraceError::Json {
            pos: self.pos,
            what: what.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, TraceError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, TraceError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, TraceError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, TraceError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-borrow the byte run as UTF-8 (input is &str, so
                    // multi-byte sequences are already valid).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&nb) = self.bytes.get(end) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, TraceError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, TraceError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses a JSON document (full document: trailing garbage is an error).
pub fn parse_json(text: &str) -> Result<Value, TraceError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

// --- trace validation -----------------------------------------------------

/// What a valid trace contained.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total duration events (`B` plus `E`).
    pub duration_events: usize,
    /// Completed regions (`B`/`E` pairs).
    pub regions: usize,
    /// Distinct tids that recorded at least one region.
    pub threads: Vec<u64>,
    /// tid → thread name from `M`etadata records.
    pub thread_names: Vec<(u64, String)>,
    /// tid → Perfetto track order from `thread_sort_index` metadata.
    pub thread_sort_indices: Vec<(u64, u64)>,
    /// Distinct region names, sorted.
    pub names: Vec<String>,
    /// Deepest `B` nesting observed on any one thread.
    pub max_depth: usize,
}

impl TraceSummary {
    /// Whether any region name starts with `prefix` (e.g. `"spgemm."`).
    pub fn has_name_prefix(&self, prefix: &str) -> bool {
        self.names.iter().any(|n| n.starts_with(prefix))
    }
}

/// Validates Chrome-trace JSON text: parses it, checks the event-object
/// shape, and replays each thread's `B`/`E` stream against a stack.
pub fn validate(text: &str) -> Result<TraceSummary, TraceError> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| TraceError::Structure("missing \"traceEvents\"".into()))?;
    let Value::Arr(events) = events else {
        return Err(TraceError::Structure("\"traceEvents\" is not an array".into()));
    };

    let mut summary = TraceSummary::default();
    let mut names: BTreeSet<String> = BTreeSet::new();
    let mut threads: BTreeSet<u64> = BTreeSet::new();
    // Per-tid stack of (name, ts).
    let mut stacks: Vec<(u64, Vec<(String, f64)>)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let at = |what: &str| TraceError::Structure(format!("event {i}: {what}"));
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing \"ph\""))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_num)
            .ok_or_else(|| at("missing numeric \"tid\""))? as u64;
        ev.get("pid")
            .and_then(Value::as_num)
            .ok_or_else(|| at("missing numeric \"pid\""))?;
        match ph {
            "M" => match ev.get("name").and_then(Value::as_str) {
                Some("thread_name") => {
                    if let Some(n) = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                    {
                        summary.thread_names.push((tid, n.to_string()));
                    }
                }
                Some("thread_sort_index") => {
                    let idx = ev
                        .get("args")
                        .and_then(|a| a.get("sort_index"))
                        .and_then(Value::as_num)
                        .ok_or_else(|| {
                            at("thread_sort_index metadata missing numeric \"args.sort_index\"")
                        })?;
                    if summary.thread_sort_indices.iter().any(|(t, _)| *t == tid) {
                        return Err(at(&format!(
                            "duplicate thread_sort_index for tid {tid}"
                        )));
                    }
                    summary.thread_sort_indices.push((tid, idx as u64));
                }
                _ => {}
            },
            "B" | "E" => {
                let name = ev
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| at("duration event missing \"name\""))?;
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_num)
                    .ok_or_else(|| at("duration event missing numeric \"ts\""))?;
                summary.duration_events += 1;
                let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
                    Some((_, s)) => s,
                    None => {
                        stacks.push((tid, Vec::new()));
                        &mut stacks.last_mut().expect("just pushed").1
                    }
                };
                if ph == "B" {
                    stack.push((name.to_string(), ts));
                    summary.max_depth = summary.max_depth.max(stack.len());
                    names.insert(name.to_string());
                    threads.insert(tid);
                } else {
                    let Some((open, open_ts)) = stack.pop() else {
                        return Err(TraceError::Unbalanced {
                            tid,
                            detail: format!("E \"{name}\" with no open region"),
                        });
                    };
                    if open != name {
                        return Err(TraceError::Unbalanced {
                            tid,
                            detail: format!("E \"{name}\" closes open region \"{open}\""),
                        });
                    }
                    if ts < open_ts {
                        return Err(TraceError::Unbalanced {
                            tid,
                            detail: format!(
                                "region \"{name}\" ends at {ts} before it begins at {open_ts}"
                            ),
                        });
                    }
                    summary.regions += 1;
                }
            }
            other => {
                return Err(at(&format!("unsupported phase \"{other}\"")));
            }
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(TraceError::Unbalanced {
                tid: *tid,
                detail: format!("region \"{name}\" never closed"),
            });
        }
    }
    summary.names = names.into_iter().collect();
    summary.threads = threads.into_iter().collect();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ph: &str, name: &str, tid: u64, ts: f64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"grb\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}}}"
        )
    }

    fn trace(events: &[String]) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }

    #[test]
    fn balanced_nested_trace_validates() {
        let t = trace(&[
            ev("B", "outer", 1, 0.0),
            ev("B", "inner", 1, 1.0),
            ev("E", "inner", 1, 2.0),
            ev("E", "outer", 1, 3.0),
            ev("B", "other", 2, 0.5),
            ev("E", "other", 2, 0.75),
        ]);
        let s = validate(&t).unwrap();
        assert_eq!(s.regions, 3);
        assert_eq!(s.threads, vec![1, 2]);
        assert_eq!(s.max_depth, 2);
        assert!(s.has_name_prefix("out"));
    }

    #[test]
    fn unbalanced_and_crossed_traces_fail() {
        let open = trace(&[ev("B", "x", 1, 0.0)]);
        assert!(matches!(
            validate(&open),
            Err(TraceError::Unbalanced { tid: 1, .. })
        ));
        let stray = trace(&[ev("E", "x", 1, 0.0)]);
        assert!(matches!(validate(&stray), Err(TraceError::Unbalanced { .. })));
        // Overlapping (not nested) close order.
        let crossed = trace(&[
            ev("B", "a", 1, 0.0),
            ev("B", "b", 1, 1.0),
            ev("E", "a", 1, 2.0),
            ev("E", "b", 1, 3.0),
        ]);
        assert!(matches!(validate(&crossed), Err(TraceError::Unbalanced { .. })));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json(r#"{"a":"quote \" slash \\ nl \n uni é pair 😀"}"#)
            .unwrap();
        assert_eq!(
            v.get("a").unwrap().as_str().unwrap(),
            "quote \" slash \\ nl \n uni é pair 😀"
        );
    }

    #[test]
    fn malformed_json_reports_position() {
        let Err(TraceError::Json { pos, .. }) = validate("{\"traceEvents\":[}") else {
            panic!("expected a JSON error");
        };
        assert!(pos > 0);
        assert!(validate("[]").is_err()); // array root: not a trace object
        assert!(matches!(validate("{}"), Err(TraceError::Structure(_))));
    }

    #[test]
    fn metadata_threads_are_collected() {
        let meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":7,\
                    \"args\":{\"name\":\"worker \\\"7\\\"\"}}"
            .to_string();
        let t = trace(&[meta, ev("B", "k", 7, 0.0), ev("E", "k", 7, 1.0)]);
        let s = validate(&t).unwrap();
        assert_eq!(s.thread_names, vec![(7, "worker \"7\"".to_string())]);
    }

    fn sort_meta(tid: u64, idx: &str) -> String {
        format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{idx}}}}}"
        )
    }

    #[test]
    fn sort_index_metadata_is_collected() {
        let t = trace(&[
            sort_meta(3, "0"),
            sort_meta(7, "2"),
            ev("B", "k", 7, 0.0),
            ev("E", "k", 7, 1.0),
        ]);
        let s = validate(&t).unwrap();
        assert_eq!(s.thread_sort_indices, vec![(3, 0), (7, 2)]);
    }

    #[test]
    fn bad_sort_index_metadata_fails() {
        // Non-numeric sort_index.
        let bad = trace(&[
            "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
             \"args\":{\"sort_index\":\"first\"}}"
                .to_string(),
        ]);
        assert!(matches!(validate(&bad), Err(TraceError::Structure(_))));
        // Missing args entirely.
        let missing = trace(&[
            "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":1}".to_string(),
        ]);
        assert!(matches!(validate(&missing), Err(TraceError::Structure(_))));
        // Two records for one tid.
        let dup = trace(&[sort_meta(5, "1"), sort_meta(5, "2")]);
        assert!(matches!(validate(&dup), Err(TraceError::Structure(_))));
    }
}
