//! The mini-shuttle scheduler: deterministic exploration of thread
//! interleavings.
//!
//! The design is the classic schedule-controlled testing loop (shuttle,
//! loom's `--fuzz` mode, PCT from Burckhardt et al., "A Randomized
//! Scheduler with Probabilistic Guarantees of Finding Bugs"): the program
//! under test runs on real OS threads, but **only one model thread is ever
//! runnable at a time**. Every instrumented synchronization operation
//! ([`crate::sync`]) is a *yield point* where the running thread hands a
//! token to the scheduler, which picks the next thread from a seeded PRNG
//! ([`graphblas_exec::rng::StdRng`] — xoshiro256++, deterministic across
//! platforms). The schedule is therefore a pure function of the seed:
//! re-running with the same seed replays the identical interleaving, which
//! turns any discovered failure into a deterministic regression test.
//!
//! Two scheduling policies are provided:
//!
//! * [`Policy::RandomWalk`] — uniform choice among runnable threads at
//!   every yield point. Simple, surprisingly effective for small state
//!   spaces (the protocols checked here have 2–4 threads).
//! * [`Policy::Pct`] — probabilistic concurrency testing: threads get
//!   random priorities, the highest-priority runnable thread always runs,
//!   and at `depth − 1` pre-chosen steps the running thread's priority is
//!   demoted below everyone else's. PCT finds bugs of preemption depth `d`
//!   with provable probability; `depth = 3` catches most real-world
//!   ordering bugs.
//!
//! The checker explores **sequentially consistent** interleavings only: it
//! finds ordering bugs (lost wakeups, deadlocks, atomicity violations),
//! not weak-memory reorderings. That matches the repo's needs — all
//! cross-thread protocols in `graphblas-exec` are mutex/condvar based, and
//! the few atomics are either SC or mutex-subsumed.
//!
//! On top of the interleaving exploration the kernel maintains **vector
//! clocks** (one per model thread, one per synchronization resource) that
//! track the happens-before relation of the executed schedule: fork and
//! join edges, mutex release→acquire edges, condvar notify→wakeup edges,
//! and atomic release→acquire edges *for the ordering the call site
//! actually requested* — a relaxed store transfers nothing. The clocks
//! power [`crate::sync::RaceCell`], which flags two unordered conflicting
//! accesses to plain shared memory as a data race. Because thread indices,
//! resource ids, and clock updates are pure functions of the schedule, a
//! race report replays byte-for-byte from its seed like every other
//! failure.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use graphblas_exec::rng::StdRng;

/// Scheduling policy for one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Uniform random choice among runnable threads at every yield point.
    RandomWalk,
    /// Probabilistic concurrency testing with the given preemption depth
    /// (number of forced priority demotions is `depth - 1`).
    Pct {
        /// Target preemption depth (`>= 1`).
        depth: u32,
    },
}

/// What one schedule execution produced.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The per-schedule seed that reproduces this failure via [`replay`].
    pub seed: u64,
    /// Index of the failing schedule within the exploration.
    pub schedule: u64,
    /// Human-readable description (deadlock report or panic message).
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule {} (seed {:#x}) failed: {}",
            self.schedule, self.seed, self.message
        )
    }
}

/// Aggregate statistics of a successful exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Number of schedules executed.
    pub schedules: u64,
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Base seed; per-schedule seeds are derived from it deterministically.
    pub seed: u64,
    /// How many schedules to run.
    pub schedules: u64,
    /// Per-schedule scheduling-decision budget; exceeding it is reported as
    /// a failure (livelock or unbounded spin under this interleaving).
    pub max_steps: u64,
    /// The scheduling policy.
    pub policy: Policy,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0x6772_625f_6368_6563, // "grb_chec"
            schedules: 1000,
            max_steps: 20_000,
            policy: Policy::RandomWalk,
        }
    }
}

impl Config {
    /// Reads the schedule count from `GRB_CHECK_SCHEDULES` when set,
    /// otherwise keeps `default_schedules`. Lets CI bound the smoke pass
    /// without recompiling.
    pub fn schedules_from_env(mut self, default_schedules: u64) -> Self {
        self.schedules = std::env::var("GRB_CHECK_SCHEDULES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_schedules);
        self
    }
}

// ---------------------------------------------------------------------------
// Kernel internals
// ---------------------------------------------------------------------------

/// Run state of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting on a resource (mutex id, condvar id, or join id).
    Blocked(usize),
    /// Returned (or unwound); never scheduled again.
    Finished,
}

struct ThreadInfo {
    status: Status,
    /// PCT priority; higher runs first. Unused under `RandomWalk`.
    priority: u64,
    /// Human label for deadlock reports.
    name: String,
}

struct KState {
    threads: Vec<ThreadInfo>,
    /// Index of the thread holding the run token.
    current: usize,
    rng: StdRng,
    policy: Policy,
    steps: u64,
    max_steps: u64,
    /// Pre-drawn step numbers at which PCT demotes the running thread.
    change_points: Vec<u64>,
    failure: Option<String>,
    /// Labels of resources, for readable deadlock reports.
    resource_names: HashMap<usize, String>,
    /// Next resource id for primitives created during this schedule.
    /// Per-kernel (not global) so ids — and hence deadlock-report text —
    /// are identical when a seed is replayed.
    next_resource: usize,
    /// Per-thread vector clocks (indexed like `threads`); component `i`
    /// counts thread `i`'s release-side synchronization operations.
    clocks: Vec<Vec<u64>>,
    /// Per-resource clocks: the join of every clock released into the
    /// resource (mutex unlock, condvar notify, atomic release-store).
    resource_clocks: HashMap<usize, Vec<u64>>,
}

/// Grows `clock` so component `i` exists.
fn vc_ensure(clock: &mut Vec<u64>, i: usize) {
    if clock.len() <= i {
        clock.resize(i + 1, 0);
    }
}

/// Element-wise maximum: `dst := dst ⊔ src`.
fn vc_join_into(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

impl KState {
    fn runnable_indices(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// One scheduling decision: pick the next thread to hold the token.
    /// Returns `None` when no thread is runnable.
    fn choose_next(&mut self) -> Option<usize> {
        self.steps += 1;
        if self.steps > self.max_steps && self.failure.is_none() {
            self.failure = Some(format!(
                "scheduling budget exceeded ({} steps): livelock or unbounded \
                 spin under this interleaving",
                self.max_steps
            ));
        }
        let runnable = self.runnable_indices();
        if runnable.is_empty() {
            return None;
        }
        let pick = match self.policy {
            Policy::RandomWalk => {
                let k = self.rng.gen_range(0..runnable.len());
                runnable[k]
            }
            Policy::Pct { .. } => {
                if self.change_points.contains(&self.steps) {
                    // Demote the running thread below every other priority.
                    let min = self
                        .threads
                        .iter()
                        .map(|t| t.priority)
                        .min()
                        .unwrap_or(0);
                    let cur = self.current;
                    if cur < self.threads.len() {
                        self.threads[cur].priority = min.saturating_sub(1);
                    }
                }
                *runnable
                    .iter()
                    .max_by_key(|&&i| self.threads[i].priority)
                    .expect("runnable is non-empty")
            }
        };
        Some(pick)
    }

    fn deadlock_report(&self) -> String {
        let mut blocked = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            if let Status::Blocked(r) = t.status {
                let rname = self
                    .resource_names
                    .get(&r)
                    .cloned()
                    .unwrap_or_else(|| format!("resource {r}"));
                blocked.push(format!("thread {i} ({}) blocked on {rname}", t.name));
            }
        }
        format!("deadlock: no runnable threads [{}]", blocked.join("; "))
    }
}

/// The shared scheduler kernel for one schedule execution.
pub(crate) struct Kernel {
    state: StdMutex<KState>,
    cv: StdCondvar,
    /// OS join handles of spawned model threads, joined at teardown.
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind model threads when the schedule aborts
/// (deadlock, budget overrun, or a panic on another thread). Swallowed by
/// the thread wrappers; never reaches user code.
pub(crate) struct SchedAbort;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Kernel>, usize)>> = const { RefCell::new(None) };
}

/// Fallback id source for primitives constructed *outside* a model run.
/// Starts in a high range disjoint from per-kernel ids (which count up
/// from 1) and from join resources (which count down from `usize::MAX`).
static NEXT_RESOURCE: AtomicUsize = AtomicUsize::new(1 << 32);

/// Allocates a fresh resource id (mutex, condvar, or join target).
///
/// Inside a model run the id comes from the kernel's own counter, so a
/// replayed seed allocates identical ids and deadlock reports are
/// byte-for-byte reproducible — which the replay-determinism tests assert.
pub(crate) fn new_resource_id() -> usize {
    if let Some((kernel, _)) = CURRENT.with(|c| c.borrow().clone()) {
        let mut st = kernel.lock();
        let id = st.next_resource;
        st.next_resource += 1;
        return id;
    }
    // grblint: allow(relaxed-ordering); grbsa: protocol(id-alloc) —
    // monotonic id allocator; only uniqueness matters, no cross-thread
    // ordering is inferred.
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

/// The kernel and model-thread index of the calling thread. Panics when
/// called outside a model run — `check::sync` primitives only function
/// under the scheduler.
pub(crate) fn current() -> (Arc<Kernel>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("check::sync primitive used outside a model run; wrap the test body in sched::explore or sched::replay")
    })
}

/// Whether the calling thread is inside a model run.
pub fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

impl Kernel {
    fn new(seed: u64, policy: Policy, max_steps: u64) -> Arc<Kernel> {
        let mut rng = StdRng::seed_from_u64(seed);
        let change_points = match policy {
            Policy::RandomWalk => Vec::new(),
            Policy::Pct { depth } => (1..depth)
                .map(|_| rng.gen_range(1..max_steps.max(2)))
                .collect(),
        };
        Arc::new(Kernel {
            state: StdMutex::new(KState {
                threads: Vec::new(),
                current: 0,
                rng,
                policy,
                steps: 0,
                max_steps,
                change_points,
                failure: None,
                resource_names: HashMap::new(),
                next_resource: 1,
                clocks: Vec::new(),
                resource_clocks: HashMap::new(),
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, KState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a new model thread; returns its index.
    fn register(&self, name: String) -> usize {
        let mut st = self.lock();
        let priority = st.rng.next_u64() >> 1; // headroom below u64::MAX
        st.threads.push(ThreadInfo {
            status: Status::Runnable,
            priority,
            name,
        });
        st.clocks.push(Vec::new());
        st.threads.len() - 1
    }

    pub(crate) fn name_resource(&self, id: usize, name: &str) {
        self.lock().resource_names.insert(id, name.to_string());
    }

    // -- vector clocks (happens-before tracking for the race detector) ------

    /// Fork edge: joins the parent's clock into the freshly registered
    /// `child` and ticks the parent, so everything the parent did *before*
    /// the spawn happens-before the child, and nothing after does.
    pub(crate) fn vc_fork(&self, parent: Option<usize>, child: usize) {
        let mut st = self.lock();
        if let Some(p) = parent {
            let pc = st.clocks[p].clone();
            vc_join_into(&mut st.clocks[child], &pc);
            vc_ensure(&mut st.clocks[p], p);
            st.clocks[p][p] += 1;
        }
        vc_ensure(&mut st.clocks[child], child);
        st.clocks[child][child] += 1;
    }

    /// Join edge: joins a finished thread's final clock into the joiner,
    /// so everything the target did happens-before the join's return.
    pub(crate) fn vc_join_with(&self, me: usize, target: usize) {
        let mut st = self.lock();
        let tc = st.clocks[target].clone();
        vc_join_into(&mut st.clocks[me], &tc);
    }

    /// Release edge: copies `me`'s clock into the resource's clock and
    /// ticks `me`, so later events of `me` are not dragged along.
    pub(crate) fn vc_release(&self, me: usize, resource: usize) {
        let mut st = self.lock();
        let mine = st.clocks[me].clone();
        vc_join_into(st.resource_clocks.entry(resource).or_default(), &mine);
        vc_ensure(&mut st.clocks[me], me);
        st.clocks[me][me] += 1;
    }

    /// Acquire edge: joins the resource's clock into `me`, completing the
    /// happens-before edge from every prior releaser.
    pub(crate) fn vc_acquire(&self, me: usize, resource: usize) {
        let mut st = self.lock();
        if let Some(rc) = st.resource_clocks.get(&resource).cloned() {
            vc_join_into(&mut st.clocks[me], &rc);
        }
    }

    /// `me`'s current epoch (its own vector-clock component). Accesses
    /// stamped with the same epoch are same-thread program-order events.
    pub(crate) fn vc_epoch(&self, me: usize) -> u64 {
        let mut st = self.lock();
        vc_ensure(&mut st.clocks[me], me);
        st.clocks[me][me]
    }

    /// Whether the event `(who, when)` happens-before `me`'s current
    /// point: `me`'s clock has caught up to `who`'s component `when`.
    pub(crate) fn vc_hb(&self, me: usize, who: usize, when: u64) -> bool {
        let st = self.lock();
        st.clocks[me].get(who).copied().unwrap_or(0) >= when
    }

    /// Records a detector failure (data race) and unwinds the calling
    /// model thread. The message must be a pure function of the schedule
    /// so replaying the seed reproduces it byte-for-byte.
    pub(crate) fn detector_fail(&self, message: String) -> ! {
        self.fail(message);
        self.abort_current_thread()
    }

    /// Records a failure and wakes every parked thread so the schedule can
    /// unwind.
    fn fail(&self, message: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        // Every thread must get out of its wait loop.
        for t in st.threads.iter_mut() {
            if t.status != Status::Finished {
                t.status = Status::Runnable;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    fn abort_current_thread(&self) -> ! {
        panic::panic_any(SchedAbort)
    }

    /// Parks the calling thread until it holds the token (or the schedule
    /// aborted, in which case this unwinds).
    fn wait_for_token(&self, me: usize) {
        let mut st = self.lock();
        loop {
            if st.failure.is_some() {
                drop(st);
                self.abort_current_thread();
            }
            if st.current == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The universal scheduling point: hand the token to a (possibly
    /// different) thread and wait until it comes back to `me`.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.failure.is_some() {
            drop(st);
            self.abort_current_thread();
        }
        match st.choose_next() {
            Some(next) => st.current = next,
            // `me` is runnable, so this cannot happen.
            None => unreachable!("yield with no runnable threads"),
        }
        let fail_now = st.failure.is_some();
        drop(st);
        self.cv.notify_all();
        if fail_now {
            // Budget overrun detected inside choose_next.
            self.fail(String::new()); // message already set; just wake all
            self.abort_current_thread();
        }
        self.wait_for_token(me);
    }

    /// Blocks the calling thread on `resource` and schedules someone else.
    /// Returns when the thread has been woken *and* granted the token.
    /// Detects deadlock (no runnable threads while blocked ones remain).
    pub(crate) fn block_on(&self, me: usize, resource: usize) {
        let mut st = self.lock();
        if st.failure.is_some() {
            drop(st);
            self.abort_current_thread();
        }
        st.threads[me].status = Status::Blocked(resource);
        match st.choose_next() {
            Some(next) => {
                st.current = next;
                let fail_now = st.failure.is_some();
                drop(st);
                self.cv.notify_all();
                if fail_now {
                    self.fail(String::new());
                    self.abort_current_thread();
                }
            }
            None => {
                let report = st.deadlock_report();
                drop(st);
                self.fail(report);
                self.abort_current_thread();
            }
        }
        self.wait_for_token(me);
    }

    /// Marks every thread blocked on `resource` runnable (they still wait
    /// for the token). Returns how many were woken.
    pub(crate) fn wake_all_on(&self, resource: usize) -> usize {
        let mut st = self.lock();
        let mut n = 0;
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(resource) {
                t.status = Status::Runnable;
                n += 1;
            }
        }
        n
    }

    /// Marks *one* seeded-randomly-chosen thread blocked on `resource`
    /// runnable. Returns whether any thread was woken.
    pub(crate) fn wake_one_on(&self, resource: usize) -> bool {
        let mut st = self.lock();
        let waiting: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Blocked(resource))
            .map(|(i, _)| i)
            .collect();
        if waiting.is_empty() {
            return false;
        }
        let k = st.rng.gen_range(0..waiting.len());
        st.threads[waiting[k]].status = Status::Runnable;
        true
    }

    /// Whether the given model thread has finished.
    pub(crate) fn is_finished(&self, idx: usize) -> bool {
        self.lock().threads[idx].status == Status::Finished
    }

    /// Thread-exit protocol: mark finished and hand the token onward. A
    /// non-[`SchedAbort`] panic payload is recorded as the schedule's
    /// failure.
    fn finish_thread(&self, me: usize, panic_payload: Option<Box<dyn Any + Send>>) {
        if let Some(p) = panic_payload {
            if !p.is::<SchedAbort>() {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "model thread panicked".to_string());
                self.fail(format!("panic in model thread {me}: {msg}"));
                return;
            }
            // SchedAbort: the failure is already recorded; just finish.
            let mut st = self.lock();
            st.threads[me].status = Status::Finished;
            drop(st);
            self.cv.notify_all();
            return;
        }
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        // Wake joiners.
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(join_resource(me)) {
                t.status = Status::Runnable;
            }
        }
        match st.choose_next() {
            Some(next) => {
                st.current = next;
                drop(st);
                self.cv.notify_all();
            }
            None => {
                // Either everyone is done (fine) or the rest are blocked
                // forever (deadlock).
                let any_blocked = st
                    .threads
                    .iter()
                    .any(|t| matches!(t.status, Status::Blocked(_)));
                if any_blocked {
                    let report = st.deadlock_report();
                    drop(st);
                    self.fail(report);
                } else {
                    drop(st);
                    self.cv.notify_all();
                }
            }
        }
    }
}

/// The join resource id of model thread `idx` (disjoint from allocated
/// resource ids, which start at 1 and grow; join ids count down from MAX).
pub(crate) fn join_resource(idx: usize) -> usize {
    usize::MAX - idx
}

// ---------------------------------------------------------------------------
// Model thread spawning (used by `check::thread`)
// ---------------------------------------------------------------------------

/// Spawns a model thread running `f`; returns its model index. The OS
/// thread parks until the scheduler grants it the token.
pub(crate) fn spawn_model_thread<F>(kernel: &Arc<Kernel>, name: String, f: F) -> usize
where
    F: FnOnce() + Send + 'static,
{
    let idx = kernel.register(name);
    let parent = CURRENT.with(|c| c.borrow().as_ref().map(|(_, i)| *i));
    kernel.vc_fork(parent, idx);
    let k = kernel.clone();
    let handle = std::thread::spawn(move || {
        CURRENT.with(|c| *c.borrow_mut() = Some((k.clone(), idx)));
        k.wait_for_token_entry(idx);
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        k.finish_thread(idx, result.err());
        CURRENT.with(|c| *c.borrow_mut() = None);
    });
    kernel
        .handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(handle);
    idx
}

impl Kernel {
    /// First park of a freshly spawned thread. Unlike [`Self::wait_for_token`],
    /// an abort here must not panic-unwind into `catch_unwind`-less code, so
    /// it returns normally and the subsequent yield point aborts — except the
    /// wrapper *does* catch unwinds, so delegate directly.
    fn wait_for_token_entry(&self, me: usize) {
        // A panic here unwinds into catch_unwind inside the wrapper? No —
        // this runs *before* catch_unwind. Park without aborting; if the
        // schedule has already failed, fall through and let the body's
        // first yield point (or the catch_unwind) handle it.
        let mut st = self.lock();
        loop {
            if st.failure.is_some() {
                return; // body will abort at its first sync op
            }
            if st.current == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Runs `body` once under the scheduler with the given seed. Returns the
/// failure message if the schedule deadlocked, overran its budget, or a
/// model thread panicked. Deterministic: same seed, same interleaving.
pub fn replay<F>(seed: u64, policy: Policy, max_steps: u64, body: F) -> Result<(), String>
where
    F: FnOnce() + Send + 'static,
{
    let kernel = Kernel::new(seed, policy, max_steps);
    // The body is model thread 0.
    spawn_model_thread(&kernel, "main".to_string(), body);
    // Thread 0 starts with the token (current == 0, registered runnable).
    kernel.cv.notify_all();
    // Join every OS thread the schedule spawned (the list can grow while
    // we join, so drain repeatedly).
    loop {
        let h = {
            let mut hs = kernel.handles.lock().unwrap_or_else(|p| p.into_inner());
            hs.pop()
        };
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let st = kernel.lock();
    match &st.failure {
        Some(msg) => Err(msg.clone()),
        None => Ok(()),
    }
}

/// Derives the per-schedule seed for schedule `i` of an exploration.
pub fn schedule_seed(base: u64, i: u64) -> u64 {
    // SplitMix64 over (base ^ golden-ratio * i) — decorrelates schedules.
    let mut z = base ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Explores `cfg.schedules` seeded interleavings of `body`. Stops at the
/// first failure, returning the seed that [`replay`] can reproduce it with.
pub fn explore<F>(cfg: &Config, body: F) -> Result<ExploreStats, Failure>
where
    F: Fn() + Send + Sync + 'static + Clone,
{
    let mut stats = ExploreStats::default();
    for i in 0..cfg.schedules {
        let seed = schedule_seed(cfg.seed, i);
        let b = body.clone();
        match replay(seed, cfg.policy, cfg.max_steps, b) {
            Ok(()) => {
                stats.schedules += 1;
            }
            Err(message) => {
                return Err(Failure {
                    seed,
                    schedule: i,
                    message,
                })
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_body_runs_clean() {
        replay(1, Policy::RandomWalk, 1000, || {}).unwrap();
    }

    #[test]
    fn replay_is_deterministic_for_panics() {
        let body = || {
            panic!("intentional");
        };
        let e1 = replay(7, Policy::RandomWalk, 1000, body).unwrap_err();
        let e2 = replay(7, Policy::RandomWalk, 1000, body).unwrap_err();
        assert_eq!(e1, e2);
        assert!(e1.contains("intentional"));
    }

    #[test]
    fn explore_counts_schedules() {
        let cfg = Config {
            schedules: 25,
            ..Config::default()
        };
        let stats = explore(&cfg, || {}).unwrap();
        assert_eq!(stats.schedules, 25);
    }

    #[test]
    fn schedule_seeds_are_distinct() {
        let a = schedule_seed(42, 0);
        let b = schedule_seed(42, 1);
        let c = schedule_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
