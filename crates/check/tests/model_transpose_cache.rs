//! Model-checks the transpose-cache handoff: concurrent readers racing to
//! populate `MatrixState::transpose_cache` under the container lock, with
//! writers swapping the store `Arc` underneath them.
//!
//! `ModelState` mirrors `MatrixState::transposed_csr` in
//! `graphblas_core::matrix`: the cache is keyed by the *identity* of the
//! store `Arc` it was computed from (pointer equality), so a reader must
//! never serve a transpose computed from a store version other than the
//! one it currently observes, no matter how population races with store
//! mutations. The checker drives readers and writers through the
//! instrumented mutex to explore the interleavings.

use std::sync::Arc;

use graphblas_check::sched::{self, Config};
use graphblas_check::sync::{thread, Mutex};

/// Stand-in for a CSR store: `version` is the data, the `Arc` identity is
/// the cache key (exactly how the real cache keys on the store `Arc`).
struct Store {
    version: u64,
}

/// Model twin of the matrix state the container mutex guards.
struct ModelState {
    store: Arc<Store>,
    /// `(source, transpose-of-source)` — valid iff `source` is pointer-equal
    /// to the current store.
    cache: Option<(Arc<Store>, u64)>,
    /// How many times the "expensive" transpose was computed.
    builds: usize,
    hits: usize,
}

/// The model's transpose: any pure function of the store's data.
fn transpose_of(s: &Store) -> u64 {
    s.version * 1000 + 7
}

impl ModelState {
    fn new() -> Self {
        ModelState {
            store: Arc::new(Store { version: 0 }),
            cache: None,
            builds: 0,
            hits: 0,
        }
    }

    /// Mirrors `MatrixState::transposed_csr`: pointer-equality hit check,
    /// compute-and-install on miss.
    fn transposed(&mut self) -> u64 {
        let src = self.store.clone();
        if let Some((key, t)) = &self.cache {
            if Arc::ptr_eq(key, &src) {
                self.hits += 1;
                return *t;
            }
        }
        let t = transpose_of(&src);
        self.builds += 1;
        self.cache = Some((src, t));
        t
    }

    /// Mirrors a store mutation: installs a NEW `Arc`, which is what
    /// invalidates the cache (no explicit flag to forget).
    fn mutate(&mut self) {
        let next = self.store.version + 1;
        self.store = Arc::new(Store { version: next });
    }
}

/// Readers racing to populate the cache while writers swap the store:
/// every read must observe the transpose of the store version it saw —
/// a stale cache entry must never be served across a mutation.
#[test]
fn racing_readers_never_see_stale_transpose() {
    let cfg = Config::default().schedules_from_env(1000);
    sched::explore(&cfg, || {
        let st = Arc::new(Mutex::named(ModelState::new(), "matrix-state"));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let st = Arc::clone(&st);
                thread::spawn(move || {
                    let mut g = st.lock();
                    let seen = g.store.version;
                    let t = g.transposed();
                    // The §III thread-safety contract: under the lock the
                    // served transpose matches the observed store version.
                    assert_eq!(
                        t,
                        seen * 1000 + 7,
                        "reader served a transpose of a different store version"
                    );
                })
            })
            .collect();
        let writer = {
            let st = Arc::clone(&st);
            thread::spawn(move || {
                st.lock().mutate();
                st.lock().mutate();
            })
        };
        for r in readers {
            r.join();
        }
        writer.join();
        let mut g = st.lock();
        // After the dust settles the cache converges: one more read builds
        // (or reuses) the final version's transpose, and a repeat is a hit.
        let final_version = g.store.version;
        let t1 = g.transposed();
        let hits_before = g.hits;
        let t2 = g.transposed();
        assert_eq!(t1, t2);
        assert_eq!(t1, final_version * 1000 + 7);
        assert_eq!(g.hits, hits_before + 1, "second read must be a cache hit");
    })
    .unwrap_or_else(|f| panic!("transpose-cache handoff failed: {f}"));
}

/// Back-to-back reads with no intervening mutation build at most once —
/// the memoization actually memoizes under every interleaving.
#[test]
fn concurrent_reads_build_at_most_once_per_version() {
    let cfg = Config::default().schedules_from_env(1000);
    sched::explore(&cfg, || {
        let st = Arc::new(Mutex::named(ModelState::new(), "matrix-state"));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let st = Arc::clone(&st);
                thread::spawn(move || {
                    st.lock().transposed();
                    st.lock().transposed();
                })
            })
            .collect();
        for r in readers {
            r.join();
        }
        let g = st.lock();
        assert_eq!(
            g.builds, 1,
            "an unchanged store must be transposed exactly once"
        );
        assert_eq!(g.hits, 5, "all later reads must hit the cache");
    })
    .unwrap_or_else(|f| panic!("transpose-cache memoization failed: {f}"));
}
