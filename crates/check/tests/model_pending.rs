//! Model-checks the §V pending-queue protocol: staged updates are drained
//! at read time under the container lock, applied exactly once, and a
//! deferred failure poisons the object (error recorded, queue cleared,
//! every later drain reports it without applying anything).
//!
//! `ModelState` mirrors the `MatrixState::drain` structure in
//! `graphblas_core::matrix` — take the queue, apply stages, on failure
//! record the error and drop the *rest* of the queue — with writers and
//! readers racing on the instrumented mutex so the checker can interleave
//! stage/drain/stage/drain arbitrarily.

use std::sync::Arc;

use graphblas_check::sched::{self, Config};
use graphblas_check::sync::{thread, Mutex};

/// A staged update: add `delta`, or fail (the model's singular value).
#[derive(Clone, Copy)]
enum Stage {
    Add(u64),
    Poison,
}

/// The model twin of the container state a `Matrix` lock guards.
struct ModelState {
    pending: Vec<Stage>,
    materialized: u64,
    /// Count of drained stages — applied-exactly-once accounting.
    applied: usize,
    err: Option<&'static str>,
}

impl ModelState {
    fn new() -> Self {
        ModelState {
            pending: Vec::new(),
            materialized: 0,
            applied: 0,
            err: None,
        }
    }

    fn stage(&mut self, s: Stage) -> Result<(), &'static str> {
        if let Some(e) = self.err {
            return Err(e); // poisoned: §V says surface the deferred error
        }
        self.pending.push(s);
        Ok(())
    }

    /// Mirrors `MatrixState::drain`: drain everything or poison; never
    /// leave a partially-applied queue behind.
    fn drain(&mut self) -> Result<u64, &'static str> {
        if let Some(e) = self.err {
            return Err(e);
        }
        let pending = std::mem::take(&mut self.pending);
        for s in pending {
            match s {
                Stage::Add(d) => {
                    self.materialized += d;
                    self.applied += 1;
                }
                Stage::Poison => {
                    self.err = Some("deferred failure");
                    // Queue already taken: remaining stages are dropped,
                    // which is exactly the §V "pending cleared" rule.
                    return Err("deferred failure");
                }
            }
        }
        Ok(self.materialized)
    }
}

/// Two writers stage, two readers drain-and-read concurrently: every
/// staged delta lands exactly once no matter the interleaving.
#[test]
fn concurrent_drains_apply_each_stage_exactly_once() {
    let cfg = Config::default().schedules_from_env(1000);
    sched::explore(&cfg, || {
        let st = Arc::new(Mutex::named(ModelState::new(), "matrix-state"));
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let st = Arc::clone(&st);
                thread::spawn(move || {
                    st.lock().stage(Stage::Add(1 + w)).unwrap();
                    st.lock().stage(Stage::Add(10)).unwrap();
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let st = Arc::clone(&st);
                thread::spawn(move || st.lock().drain().unwrap())
            })
            .collect();
        for w in writers {
            w.join();
        }
        for r in readers {
            r.join();
        }
        let mut final_state = st.lock();
        let total = final_state.drain().unwrap();
        // 1 + 2 + 10 + 10, regardless of stage/drain interleaving.
        assert_eq!(total, 23, "a staged update was lost or double-applied");
        assert_eq!(final_state.applied, 4);
        assert!(final_state.pending.is_empty(), "drain left stages behind");
    })
    .unwrap_or_else(|f| panic!("pending-drain protocol failed: {f}"));
}

/// A poisoned drain clears the queue and every subsequent operation
/// surfaces the deferred error — no stage applied after the failure.
#[test]
fn deferred_error_poisons_across_threads() {
    let cfg = Config::default().schedules_from_env(1000);
    sched::explore(&cfg, || {
        let st = Arc::new(Mutex::named(ModelState::new(), "matrix-state"));
        {
            let mut g = st.lock();
            g.stage(Stage::Add(5)).unwrap();
            g.stage(Stage::Poison).unwrap();
            g.stage(Stage::Add(7)).unwrap(); // must never materialize
        }
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let st = Arc::clone(&st);
                thread::spawn(move || st.lock().drain())
            })
            .collect();
        let results: Vec<_> = readers.into_iter().map(|r| r.join()).collect();
        assert!(
            results.iter().all(|r| r.is_err()),
            "every drain after the failure must report it: {results:?}"
        );
        let g = st.lock();
        assert_eq!(g.err, Some("deferred failure"));
        assert!(g.pending.is_empty(), "§V: poisoned object holds no pending");
        assert_eq!(g.materialized, 5, "stages after the failure leaked");
    })
    .unwrap_or_else(|f| panic!("deferred-error protocol failed: {f}"));
}
