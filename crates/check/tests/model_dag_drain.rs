//! Model-checks the nonblocking op-DAG drain protocol (paper §III):
//! background drains handed to the pool race `wait` barriers and readers
//! on the per-container mutex, and no interleaving may lose a stage,
//! apply one twice, or let `wait` return with work still queued.
//!
//! `DagState` mirrors the `Stage::Node` drain in `graphblas_core::pending`
//! — a node flushes the map run queued before it (node-barrier), then
//! greedily consumes the maps queued *after* it as its fused `post` run —
//! and `maybe_async_drain` is modeled by writers offering a drain task
//! once the queue depth crosses a threshold, exactly like the depth gate
//! in `Vector::maybe_async_drain`.

use std::sync::Arc;

use graphblas_check::sched::{self, Config};
use graphblas_check::sync::{thread, Mutex};

/// A deferred stage: a fusible element map or an opaque op node.
#[derive(Clone, Copy)]
enum ModelStage {
    Map(u64),
    Node(u64),
}

/// Model twin of the state a `Vector`'s lock guards, instrumented with
/// applied-exactly-once accounting.
struct DagState {
    pending: Vec<ModelStage>,
    materialized: u64,
    maps_applied: usize,
    nodes_applied: usize,
    /// Maps consumed as a node's fused post run (never re-applied).
    post_fused: usize,
    drains: usize,
}

impl DagState {
    fn new() -> Self {
        DagState {
            pending: Vec::new(),
            materialized: 0,
            maps_applied: 0,
            nodes_applied: 0,
            post_fused: 0,
            drains: 0,
        }
    }

    fn stage(&mut self, s: ModelStage) -> usize {
        self.pending.push(s);
        self.pending.len()
    }

    /// Mirrors `PendingQueue` drain with the node arm: the queue is taken
    /// whole under the lock, so a racing drain sees an empty queue, never
    /// a half-applied one.
    fn drain(&mut self) -> u64 {
        let pending = std::mem::take(&mut self.pending);
        if !pending.is_empty() {
            self.drains += 1;
        }
        let mut i = 0;
        while i < pending.len() {
            match pending[i] {
                ModelStage::Map(d) => {
                    self.materialized += d;
                    self.maps_applied += 1;
                    i += 1;
                }
                ModelStage::Node(d) => {
                    self.materialized += d;
                    self.nodes_applied += 1;
                    i += 1;
                    // The node's fused post run: trailing maps apply with
                    // the node, once, and are not revisited by the loop.
                    while let Some(ModelStage::Map(p)) = pending.get(i) {
                        self.materialized += p;
                        self.maps_applied += 1;
                        self.post_fused += 1;
                        i += 1;
                    }
                }
            }
        }
        self.materialized
    }
}

/// Two writers stage map/node chains while async drains (offered at the
/// depth threshold, like `maybe_async_drain`) race a reader and a final
/// `wait`: every stage lands exactly once and `wait` leaves nothing
/// queued.
#[test]
fn async_drains_race_wait_without_lost_or_double_applied_stages() {
    const DEPTH: usize = 2;
    let cfg = Config::default().schedules_from_env(1000);
    sched::explore(&cfg, || {
        let st = Arc::new(Mutex::named(DagState::new(), "vector-state"));
        let mut handles = Vec::new();
        for w in 0..2u64 {
            let st = Arc::clone(&st);
            handles.push(thread::spawn(move || {
                let chain = [
                    ModelStage::Map(1 + w),
                    ModelStage::Node(10),
                    ModelStage::Map(100),
                ];
                for s in chain {
                    let depth = st.lock().stage(s);
                    if depth >= DEPTH {
                        // maybe_async_drain: offer the backlog to the pool.
                        let bg = Arc::clone(&st);
                        thread::spawn(move || {
                            bg.lock().drain();
                        })
                        .join();
                    }
                }
            }));
        }
        // A reader forces the subgraph it needs mid-stream.
        {
            let st = Arc::clone(&st);
            handles.push(thread::spawn(move || {
                st.lock().drain();
            }));
        }
        for h in handles {
            h.join();
        }
        // wait(COMPLETE): a real barrier — drains whatever is left and
        // must observe a fully-applied, empty queue.
        let mut g = st.lock();
        let total = g.drain();
        assert_eq!(
            total, 223,
            "a stage was lost or double-applied across async drains"
        );
        assert_eq!(g.maps_applied, 4, "map stages must apply exactly once");
        assert_eq!(g.nodes_applied, 2, "node stages must apply exactly once");
        assert!(g.pending.is_empty(), "wait returned with stages queued");
    })
    .unwrap_or_else(|f| panic!("dag drain protocol failed: {f}"));
}

/// The fused-post invariant under racing drains: however the drains
/// interleave with the writer, a map is consumed either by its own map
/// run or as some node's post run — never both, and maps queued behind a
/// node in the same drain pass always ride that node.
#[test]
fn post_fusion_is_exactly_once_under_racing_drains() {
    let cfg = Config::default().schedules_from_env(1000);
    sched::explore(&cfg, || {
        let st = Arc::new(Mutex::named(DagState::new(), "vector-state"));
        let writer = {
            let st = Arc::clone(&st);
            thread::spawn(move || {
                st.lock().stage(ModelStage::Node(10));
                st.lock().stage(ModelStage::Map(100));
                st.lock().stage(ModelStage::Map(1000));
            })
        };
        let drainer = {
            let st = Arc::clone(&st);
            thread::spawn(move || {
                st.lock().drain();
            })
        };
        writer.join();
        drainer.join();
        let mut g = st.lock();
        g.drain();
        assert_eq!(g.materialized, 1110, "fused post run lost or re-applied a map");
        assert_eq!(g.nodes_applied, 1);
        assert_eq!(g.maps_applied, 2);
        // Whatever the interleaving, a map that drained in the same pass
        // as the node was fused behind it, and one drained later was not;
        // both paths apply it exactly once (checked by the totals above).
        assert!(g.post_fused <= 2);
        assert!(g.drains <= 2, "the queue is taken whole; at most one drain per backlog");
    })
    .unwrap_or_else(|f| panic!("post-fusion protocol failed: {f}"));
}
