//! Model-checks the `exec::sync` channel and `WaitGroup` protocols via
//! their instrumented twins in `graphblas_check::sync` (kept in textual
//! lockstep with the production bodies — see the module docs on both
//! sides).
//!
//! The channel backs cross-context hand-off; the `WaitGroup` is what
//! `ThreadPool::scope` blocks on (`ScopeState::wait`), so a lost `done()`
//! here is a hung kernel there.

use std::sync::Arc;

use graphblas_check::sched::{self, Config, Policy};
use graphblas_check::sync::{thread, Channel, WaitGroup};

/// Single-producer/single-consumer delivery: everything sent before close
/// is received, in order, across the smoke budget of interleavings.
#[test]
fn channel_delivers_in_order_then_drains_on_close() {
    let cfg = Config::default().schedules_from_env(1000);
    sched::explore(&cfg, || {
        let ch = Arc::new(Channel::new());
        let consumer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = ch.recv() {
                    got.push(v);
                }
                got
            })
        };
        for v in 0..3u32 {
            assert!(ch.send(v), "send before close must succeed");
        }
        ch.close();
        assert_eq!(consumer.join(), vec![0, 1, 2], "in order, none lost");
        assert!(!ch.send(9), "send after close must fail");
    })
    .unwrap_or_else(|f| panic!("channel protocol failed: {f}"));
}

/// Two producers, one consumer: counts balance and `recv` wakes for every
/// item even when sends race each other.
#[test]
fn channel_multi_producer_counts_balance() {
    let mut cfg = Config::default().schedules_from_env(500);
    cfg.policy = Policy::Pct { depth: 3 };
    sched::explore(&cfg, || {
        let ch = Arc::new(Channel::new());
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let ch = Arc::clone(&ch);
                thread::spawn(move || {
                    ch.send(p);
                    ch.send(p + 10);
                })
            })
            .collect();
        let consumer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                let mut n = 0;
                while ch.recv().is_some() {
                    n += 1;
                }
                n
            })
        };
        for p in producers {
            p.join();
        }
        ch.close();
        assert_eq!(consumer.join(), 4, "every send received exactly once");
    })
    .unwrap_or_else(|f| panic!("multi-producer channel failed: {f}"));
}

/// The scope protocol: `wait` returns only after every `done`, with
/// add/done racing the waiter — exactly how `ThreadPool::scope` uses it.
#[test]
fn waitgroup_scope_protocol_holds() {
    let cfg = Config::default().schedules_from_env(1000);
    sched::explore(&cfg, || {
        let wg = Arc::new(WaitGroup::new());
        let done = Arc::new(graphblas_check::sync::AtomicUsize::new(0));
        // Mirror scope: tasks are registered before the waiter can block.
        let workers: Vec<_> = (0..2)
            .map(|_| {
                wg.add(1);
                let wg = Arc::clone(&wg);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    wg.done();
                })
            })
            .collect();
        wg.wait();
        // The invariant scope soundness rests on (§III): after wait()
        // every task body has fully executed.
        assert_eq!(
            done.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "wait returned before all tasks finished"
        );
        assert_eq!(wg.outstanding(), 0);
        for w in workers {
            w.join();
        }
    })
    .unwrap_or_else(|f| panic!("waitgroup protocol failed: {f}"));
}
