//! Seeded-bug regression fixtures for `grbsa`: sources with a planted
//! concurrency bug that the static analyzer **must** find, plus the
//! waiver/stale-annotation contract and the `--json` schema round-trip.
//!
//! These are the negative tests the in-crate unit tests can't express as
//! naturally: each fixture is a complete mini-workspace fed through the
//! same `analyze_sources` entry point the `grbsa` binary uses.

use graphblas_check::report::{findings_json, JsonFinding, FINDINGS_SCHEMA};
use graphblas_check::sa::{analyze_sources, Rule};
use graphblas_check::trace::{parse_json, Value};

fn analyze(files: &[(&str, &str)]) -> graphblas_check::sa::Analysis {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_sources(&owned)
}

// ---------------------------------------------------------------------------
// Lock-order inversion
// ---------------------------------------------------------------------------

const DIRECT_INVERSION: &str = r#"
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
"#;

#[test]
fn direct_lock_inversion_is_found() {
    let analysis = analyze(&[("crates/fix/src/pair.rs", DIRECT_INVERSION)]);
    let cycles: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::LockOrderCycle)
        .collect();
    assert!(
        !cycles.is_empty(),
        "planted a-b/b-a inversion must be reported; findings: {:?}",
        analysis.findings
    );
    let w = &cycles[0].witness;
    assert!(
        w.contains("fix/pair::Pair.a") && w.contains("fix/pair::Pair.b"),
        "witness must name both locks: {w}"
    );
    assert!(
        w.contains("crates/fix/src/pair.rs:"),
        "witness must carry file:line sites: {w}"
    );
}

const INTERPROCEDURAL_INVERSION: &str = r#"
use std::sync::Mutex;

pub struct Store {
    index: Mutex<u32>,
    data: Mutex<u32>,
}

impl Store {
    fn bump_data(&self) {
        let mut d = self.data.lock().unwrap();
        *d += 1;
    }

    fn bump_index(&self) {
        let mut i = self.index.lock().unwrap();
        *i += 1;
    }

    pub fn forward(&self) {
        let _i = self.index.lock().unwrap();
        self.bump_data();
    }

    pub fn backward(&self) {
        let _d = self.data.lock().unwrap();
        self.bump_index();
    }
}
"#;

#[test]
fn interprocedural_inversion_is_found_through_call_summaries() {
    let analysis = analyze(&[("crates/fix/src/store.rs", INTERPROCEDURAL_INVERSION)]);
    let cycles: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::LockOrderCycle)
        .collect();
    assert!(
        !cycles.is_empty(),
        "inversion through callees must be reported; findings: {:?}",
        analysis.findings
    );
    assert!(
        cycles[0].witness.contains("via"),
        "interprocedural witness must show the call chain: {}",
        cycles[0].witness
    );
}

#[test]
fn waiver_suppresses_and_counts() {
    // Same inversion with one side waived inside the function body.
    let waived_src = DIRECT_INVERSION.replace(
        "    pub fn ab(&self) -> u32 {",
        "    pub fn ab(&self) -> u32 {\n        \
         // grbsa: allow(lock-order-cycle) — fixture: intentional inversion.",
    );
    let analysis = analyze(&[("crates/fix/src/pair.rs", &waived_src)]);
    assert!(
        !analysis
            .findings
            .iter()
            .any(|f| f.rule == Rule::LockOrderCycle),
        "waived cycle must not be reported: {:?}",
        analysis.findings
    );
    assert!(analysis.waived >= 1, "waiver must be counted");
    // And the waiver is *used*, so no stale-annotation finding either.
    assert!(
        !analysis
            .findings
            .iter()
            .any(|f| f.rule == Rule::StaleAnnotation),
        "a suppressing waiver is not stale: {:?}",
        analysis.findings
    );
}

#[test]
fn unused_waiver_is_reported_stale() {
    let clean = r#"
pub fn tidy() -> u32 {
    // grbsa: allow(lock-order-cycle) — nothing here needs this.
    41 + 1
}
"#;
    let analysis = analyze(&[("crates/fix/src/clean.rs", clean)]);
    let stale: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::StaleAnnotation)
        .collect();
    assert_eq!(
        stale.len(),
        1,
        "an allow that suppresses nothing must be flagged: {:?}",
        analysis.findings
    );
}

// ---------------------------------------------------------------------------
// Atomics audit
// ---------------------------------------------------------------------------

const RELAXED_PUBLISH: &str = r#"
use std::sync::atomic::{AtomicBool, Ordering};

pub static READY: AtomicBool = AtomicBool::new(false);

pub fn publish() {
    READY.store(true, Ordering::Relaxed);
}

pub fn consume() -> bool {
    READY.load(Ordering::Acquire)
}
"#;

#[test]
fn unannotated_relaxed_publish_is_found() {
    let analysis = analyze(&[("crates/fix/src/flag.rs", RELAXED_PUBLISH)]);
    assert!(
        analysis
            .findings
            .iter()
            .any(|f| f.rule == Rule::RelaxedWithoutProtocol),
        "relaxed store without a protocol annotation must be reported: {:?}",
        analysis.findings
    );
}

#[test]
fn publish_protocol_forbids_relaxed() {
    let annotated = RELAXED_PUBLISH.replace(
        "pub fn publish() {",
        "pub fn publish() {\n    \
         // grbsa: protocol(publish) — fixture: claims release/acquire.",
    );
    let analysis = analyze(&[("crates/fix/src/flag.rs", &annotated)]);
    assert!(
        analysis
            .findings
            .iter()
            .any(|f| f.rule == Rule::ProtocolViolation),
        "a relaxed store under protocol(publish) must be a violation: {:?}",
        analysis.findings
    );
}

#[test]
fn unpaired_release_is_found() {
    let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};

pub static PHASE: AtomicUsize = AtomicUsize::new(0);

pub fn advance() {
    PHASE.store(1, Ordering::Release);
}
"#;
    let analysis = analyze(&[("crates/fix/src/phase.rs", src)]);
    assert!(
        analysis
            .findings
            .iter()
            .any(|f| f.rule == Rule::UnpairedRelease),
        "a release store no acquire ever observes must be reported: {:?}",
        analysis.findings
    );
}

// ---------------------------------------------------------------------------
// JSON schema round-trip (the `--json` contract of both binaries)
// ---------------------------------------------------------------------------

#[test]
fn findings_json_round_trips_through_the_trace_parser() {
    let analysis = analyze(&[("crates/fix/src/pair.rs", DIRECT_INVERSION)]);
    let findings: Vec<JsonFinding> = analysis
        .findings
        .iter()
        .map(|f| JsonFinding {
            rule: f.rule.slug().to_string(),
            file: f.file.clone(),
            line: f.line,
            message: f.message.clone(),
            witness: f.witness.clone(),
        })
        .collect();
    assert!(!findings.is_empty(), "fixture must produce findings");
    let json = findings_json("grbsa", &findings);

    let doc = parse_json(&json).expect("tool output must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(FINDINGS_SCHEMA),
        "schema marker must be stable"
    );
    assert_eq!(doc.get("tool").and_then(Value::as_str), Some("grbsa"));
    assert_eq!(
        doc.get("count").and_then(Value::as_num),
        Some(findings.len() as f64)
    );
    let items = match doc.get("findings") {
        Some(Value::Arr(items)) => items,
        other => panic!("findings must be an array, got {other:?}"),
    };
    assert_eq!(items.len(), findings.len());
    for (item, f) in items.iter().zip(&findings) {
        assert_eq!(item.get("rule").and_then(Value::as_str), Some(f.rule.as_str()));
        assert_eq!(item.get("file").and_then(Value::as_str), Some(f.file.as_str()));
        assert_eq!(
            item.get("line").and_then(Value::as_num),
            Some(f.line as f64)
        );
        assert!(item.get("message").is_some() && item.get("witness").is_some());
    }
}
