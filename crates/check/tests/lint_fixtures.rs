//! Negative-test fixtures for `grblint`: seed a synthetic workspace with
//! one violation per rule and assert the lint pass catches each — the
//! acceptance criterion that grblint *fails* on bad input, not just that
//! it passes on a clean tree.

use std::fs;
use std::path::PathBuf;

use graphblas_check::lint::{lint_workspace, Rule};

/// Builds a throwaway workspace under the target tmpdir. Each (path,
/// source) pair is written relative to the root.
fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("grblint-fixture-{name}-{}", std::process::id()));
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, src).unwrap();
    }
    root
}

#[test]
fn seeded_relaxed_ordering_violation_fails() {
    let forbidden = concat!("Ordering::", "Relaxed");
    let src = format!("pub fn bump(c: &AtomicU64) {{\n    c.fetch_add(1, {forbidden});\n}}\n");
    let root = fixture("relaxed", &[("crates/exec/src/bad.rs", &src)]);
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::RelaxedOrdering);
    assert_eq!(v[0].line, 2);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn seeded_relaxed_in_obs_is_sanctioned() {
    let forbidden = concat!("Ordering::", "Relaxed");
    let src = format!("pub fn bump(c: &AtomicU64) {{\n    c.fetch_add(1, {forbidden});\n}}\n");
    let root = fixture("relaxed-obs", &[("crates/obs/src/counters.rs", &src)]);
    let v = lint_workspace(&root).unwrap();
    assert!(v.is_empty(), "obs counters are the sanctioned use: {v:?}");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn seeded_unwrap_violation_fails_in_core_but_not_exec() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let root = fixture(
        "unwrap",
        &[
            ("crates/core/src/bad.rs", src),
            ("crates/exec/src/fine.rs", src),
        ],
    );
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::NoUnwrap);
    assert!(v[0].file.contains("core"), "{}", v[0].file);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn seeded_fallible_api_violation_fails() {
    let src = "\
pub fn open(
    path: &str,
) -> Result<File, std::io::Error> {
    File::open(path)
}
pub fn good(n: u64) -> GrbResult<u64> {
    Ok(n)
}
";
    let root = fixture("errtype", &[("crates/core/src/bad.rs", src)]);
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::GrbErrorType);
    assert_eq!(v[0].line, 1, "reported at the signature start");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn seeded_undocumented_unsafe_violation_fails() {
    let kw = concat!("uns", "afe");
    let src = format!(
        "pub fn f(p: *const u8) -> u8 {{\n    {kw} {{ *p }}\n}}\n\
         pub fn g(p: *const u8) -> u8 {{\n    // SAFETY: caller guarantees p is valid.\n    {kw} {{ *p }}\n}}\n"
    );
    let root = fixture("unsafe", &[("crates/exec/src/bad.rs", &src)]);
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::UndocumentedUnsafe);
    assert_eq!(v[0].line, 2);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn waived_violation_passes_and_waiver_expires_after_statement() {
    let forbidden = concat!("Ordering::", "Relaxed");
    let src = format!(
        "pub fn f(c: &AtomicU64) {{\n\
         \x20   // grblint: allow(relaxed-ordering) — fixture-sanctioned.\n\
         \x20   c.fetch_add(1, {forbidden});\n\
         \x20   c.fetch_add(1, {forbidden});\n\
         }}\n"
    );
    let root = fixture("waiver", &[("crates/exec/src/waived.rs", &src)]);
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 1, "second use is past the waiver's scope: {v:?}");
    assert_eq!(v[0].line, 4);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn seeded_counter_without_metric_violation_fails() {
    let counters = "\
pub struct PoolCounters {
    pub covered: AtomicU64,
    pub orphan: AtomicU64,
}
";
    let registry = "\
const REGISTRY: &[MetricDesc] = &[
    m(\"grb.pool.covered\", C, \"Covered by a metric.\"),
];
";
    let root = fixture(
        "countermetric",
        &[
            ("crates/obs/src/counters.rs", counters),
            ("crates/obs/src/export/registry.rs", registry),
        ],
    );
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::CounterWithoutMetric);
    assert_eq!(v[0].line, 3);
    assert!(v[0].file.contains("counters.rs"), "{}", v[0].file);
    fs::remove_dir_all(&root).unwrap();

    // Without a registry file every counter field is an orphan.
    let root = fixture("countermetric-noreg", &[("crates/obs/src/counters.rs", counters)]);
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|x| x.rule == Rule::CounterWithoutMetric));
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn covered_and_waived_counters_pass() {
    let counters = "\
pub struct PoolCounters {
    pub covered: AtomicU64,
    // grblint: allow(counter-without-metric) — fixture-sanctioned.
    pub internal: AtomicU64,
}
";
    let registry = "\
const REGISTRY: &[MetricDesc] = &[
    m(\"grb.pool.covered\", C, \"Covered by a metric.\"),
];
";
    let root = fixture(
        "countermetric-ok",
        &[
            ("crates/obs/src/counters.rs", counters),
            ("crates/obs/src/export/registry.rs", registry),
        ],
    );
    let v = lint_workspace(&root).unwrap();
    assert!(v.is_empty(), "{v:?}");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn test_dirs_and_test_modules_are_out_of_scope() {
    let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
    let root = fixture(
        "scope",
        &[
            ("crates/core/tests/itest.rs", src),
            ("crates/core/benches/bench.rs", src),
            (
                "crates/core/src/lib.rs",
                "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) { x.unwrap(); }\n}\n",
            ),
        ],
    );
    let v = lint_workspace(&root).unwrap();
    assert!(v.is_empty(), "{v:?}");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn seeded_dark_drain_violation_fails() {
    let take = concat!("take(&mut self.", "pending)");
    let bad = format!(
        "impl St {{\n\
         \x20   fn drain(&mut self) {{\n\
         \x20       let pending = std::mem::{take};\n\
         \x20       for s in pending {{ s.run(); }}\n\
         \x20   }}\n\
         }}\n"
    );
    let root = fixture("darkdrain", &[("crates/core/src/bad.rs", &bad)]);
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::DrainWithoutBarrierSpan);
    assert_eq!(v[0].line, 3, "reported at the queue-take site");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn drain_with_span_and_force_event_passes_and_rule_is_core_scoped() {
    let take = concat!("take(&mut self.", "pending)");
    let force = concat!("events::decision_dag_", "force");
    let good = format!(
        "impl St {{\n\
         \x20   fn drain(&mut self, ctx: &Context) {{\n\
         \x20       let _sp = graphblas_obs::span_ctx(\"drain\", ctx.id());\n\
         \x20       let pending = std::mem::{take};\n\
         \x20       graphblas_obs::{force}(\"drain\", ctx.id(), \"read\", 1);\n\
         \x20       for s in pending {{ s.run(); }}\n\
         \x20   }}\n\
         }}\n"
    );
    // The span-less body is fine outside crates/core: the drain protocol
    // is a core convention.
    let dark = format!(
        "impl St {{\n\
         \x20   fn drain(&mut self) {{\n\
         \x20       let pending = std::mem::{take};\n\
         \x20       for s in pending {{ s.run(); }}\n\
         \x20   }}\n\
         }}\n"
    );
    let root = fixture(
        "draingood",
        &[
            ("crates/core/src/good.rs", good.as_str()),
            ("crates/exec/src/fine.rs", dark.as_str()),
        ],
    );
    let v = lint_workspace(&root).unwrap();
    assert!(v.is_empty(), "{v:?}");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn drain_missing_only_the_force_event_still_fails_unless_waived() {
    let take = concat!("take(&mut self.", "pending)");
    let spanned = format!(
        "impl St {{\n\
         \x20   fn drain(&mut self, ctx: &Context) {{\n\
         \x20       let _sp = graphblas_obs::span_ctx(\"drain\", ctx.id());\n\
         \x20       let pending = std::mem::{take};\n\
         \x20   }}\n\
         \x20   fn drain_waived(&mut self) {{\n\
         \x20       // grblint: allow(drain-without-barrier-span) — fixture-sanctioned.\n\
         \x20       let pending = std::mem::{take};\n\
         \x20   }}\n\
         }}\n"
    );
    let root = fixture("drainhalf", &[("crates/core/src/half.rs", &spanned)]);
    let v = lint_workspace(&root).unwrap();
    assert_eq!(v.len(), 1, "span alone is not enough: {v:?}");
    assert_eq!(v[0].rule, Rule::DrainWithoutBarrierSpan);
    assert_eq!(v[0].line, 4);
    fs::remove_dir_all(&root).unwrap();
}
