//! Model-checks the thread pool's park/wake protocol (§III: the runtime
//! must be thread-safe; the pool is what runs every parallel kernel).
//!
//! `ModelQueue` mirrors `graphblas_exec::pool::JobQueue` line for line —
//! same `QueueState { jobs, closed, parked }` under one mutex, same
//! push/pop/close bodies — but over the instrumented primitives in
//! `graphblas_check::sync`, so [`sched::explore`] can drive every
//! sequentially-consistent interleaving of producers, consumers, and
//! shutdown.
//!
//! The `buggy_*` test seeds the historical failure mode the production
//! refactor forecloses (checking emptiness, releasing the lock, then
//! re-acquiring and waiting *without re-checking*): the checker finds the
//! lost-wakeup deadlock within the smoke budget and replays it from the
//! reported seed — the determinism acceptance criterion.

use std::collections::VecDeque;
use std::sync::Arc;

use graphblas_check::sched::{self, Config, Policy};
use graphblas_check::sync::{thread, Condvar, Mutex};

/// Guarded queue state — the model twin of `pool::QueueState`.
struct QState {
    jobs: VecDeque<u32>,
    closed: bool,
    parked: usize,
}

/// The model twin of `pool::JobQueue`. Keep the method bodies textually
/// parallel to the production ones: that parallelism is what makes a pass
/// here evidence about the shipped protocol.
struct ModelQueue {
    state: Mutex<QState>,
    available: Condvar,
}

impl ModelQueue {
    fn new() -> Self {
        ModelQueue {
            state: Mutex::named(
                QState {
                    jobs: VecDeque::new(),
                    closed: false,
                    parked: 0,
                },
                "job-queue",
            ),
            available: Condvar::new(),
        }
    }

    fn push(&self, job: u32) {
        let mut st = self.state.lock();
        if st.closed {
            return;
        }
        st.jobs.push_back(job);
        let _would_wake = st.parked > 0; // the obs "wake" decision point
        drop(st);
        self.available.notify_one();
    }

    fn pop(&self) -> Option<u32> {
        let mut st = self.state.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st.parked += 1;
            st = self.available.wait(st);
            st.parked -= 1;
        }
    }

    /// The seeded bug: re-check-free waiting. Between `drop(st)` and the
    /// re-acquired `wait`, a producer can push *and* notify into an empty
    /// waiter set; this consumer then sleeps on a wakeup that already
    /// happened. The production `pop` above forecloses this by re-checking
    /// under the same critical section it waits in.
    fn buggy_pop(&self) -> Option<u32> {
        let mut st = self.state.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            drop(st);
            let reacquired = self.state.lock();
            st = self.available.wait(reacquired);
        }
    }

    fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.available.notify_all();
    }
}

/// Every produced job is consumed exactly once and shutdown terminates all
/// workers, across the full smoke budget of schedules.
#[test]
fn park_wake_protocol_delivers_all_jobs() {
    let cfg = Config::default().schedules_from_env(1000);
    let stats = sched::explore(&cfg, || {
        let q = Arc::new(ModelQueue::new());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(j) = q.pop() {
                        got.push(j);
                    }
                    got
                })
            })
            .collect();
        for j in 0..3 {
            q.push(j);
        }
        q.close();
        let mut all: Vec<u32> = workers.into_iter().flat_map(|w| w.join()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "every job exactly once");
    })
    .unwrap_or_else(|f| panic!("pool protocol failed: {f}"));
    assert!(stats.schedules >= 1);
}

/// The same protocol under PCT scheduling (priority-based preemption
/// bounding), which reaches orderings a uniform random walk visits rarely.
#[test]
fn park_wake_protocol_survives_pct() {
    let mut cfg = Config::default().schedules_from_env(500);
    cfg.policy = Policy::Pct { depth: 3 };
    sched::explore(&cfg, || {
        let q = Arc::new(ModelQueue::new());
        let w = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut n = 0u32;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            })
        };
        q.push(7);
        q.push(8);
        q.close();
        assert_eq!(w.join(), 2);
    })
    .unwrap_or_else(|f| panic!("pool protocol failed under PCT: {f}"));
}

/// The checker finds the seeded lost-wakeup bug and reproduces it
/// deterministically from the reported seed.
#[test]
fn buggy_unlocked_park_check_loses_wakeups() {
    let body = || {
        let q = Arc::new(ModelQueue::new());
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.buggy_pop())
        };
        // One job, one notify, no close: a correct consumer always gets the
        // job; the buggy one can sleep through the only wakeup.
        q.push(42);
        assert_eq!(consumer.join(), Some(42));
    };
    let cfg = Config::default().schedules_from_env(1000);
    let failure = sched::explore(&cfg, body)
        .expect_err("exploration must find the lost-wakeup interleaving");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {}",
        failure.message
    );
    // Replay-from-seed: the exact interleaving, hence the exact report.
    let replayed = sched::replay(failure.seed, cfg.policy, cfg.max_steps, body)
        .expect_err("replaying the failing seed must fail again");
    assert_eq!(replayed, failure.message, "replay is deterministic");
}
