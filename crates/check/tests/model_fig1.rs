//! Model-checks the paper's Fig. 1 scenario (§III): two threads share a
//! matrix; thread 1 finishes its updates with `GrB_wait(A, COMPLETE)` and
//! then publishes the handle through a release-store flag; thread 2 spins
//! on the flag (acquire) and only then reads the matrix. The spec's
//! contract is that after `wait(COMPLETE)` plus user-side synchronization,
//! the reader observes a fully materialized object.
//!
//! Two tests: the correct protocol survives the full smoke budget, and a
//! seeded misuse (publishing *before* the wait) is caught by the checker
//! and replayed deterministically from the reported seed — the §III bug
//! Fig. 1 exists to warn about.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use graphblas_check::sched::{self, Config};
use graphblas_check::sync::{thread, AtomicBool, Mutex};

/// The shared matrix: staged updates drain into materialized storage
/// under the container lock (the model twin of `MatrixState`).
struct SharedMatrix {
    pending: Vec<u64>,
    materialized: Vec<u64>,
}

impl SharedMatrix {
    fn new() -> Self {
        SharedMatrix {
            pending: Vec::new(),
            materialized: Vec::new(),
        }
    }

    /// `GrB_wait(A, COMPLETE)`: drain everything staged so far.
    fn wait_complete(&mut self) {
        let staged = std::mem::take(&mut self.pending);
        self.materialized.extend(staged);
    }
}

fn fig1_body(publish_before_wait: bool) {
    let a = Arc::new(Mutex::named(SharedMatrix::new(), "fig1-matrix"));
    let ready = Arc::new(AtomicBool::new(false));

    let writer = {
        let a = Arc::clone(&a);
        let ready = Arc::clone(&ready);
        thread::spawn(move || {
            {
                let mut m = a.lock();
                m.pending.push(1);
                m.pending.push(2);
            }
            if publish_before_wait {
                // The seeded §III misuse: the flag races ahead of the
                // wait, so the reader can see a half-built object.
                ready.store(true, Ordering::Release);
                a.lock().wait_complete();
            } else {
                a.lock().wait_complete();
                ready.store(true, Ordering::Release);
            }
        })
    };

    let reader = {
        let a = Arc::clone(&a);
        let ready = Arc::clone(&ready);
        thread::spawn(move || {
            // Bounded in model time by the scheduler's step budget; every
            // load is a yield point, so the spin cannot starve the writer.
            while !ready.load(Ordering::Acquire) {}
            let m = a.lock();
            assert!(
                m.pending.is_empty(),
                "reader observed pending updates after wait(COMPLETE)"
            );
            assert_eq!(m.materialized, vec![1, 2]);
        })
    };

    writer.join();
    reader.join();
}

/// The correct Fig. 1 protocol: wait(COMPLETE) before publication means
/// no interleaving lets the reader see an incomplete matrix.
#[test]
fn fig1_wait_complete_then_publish_is_safe() {
    let cfg = Config::default().schedules_from_env(1000);
    let stats = sched::explore(&cfg, || fig1_body(false))
        .unwrap_or_else(|f| panic!("fig1 protocol failed: {f}"));
    assert!(stats.schedules >= 1);
}

/// Publishing before the wait is caught: some interleaving lets the
/// reader in between the store and the drain, and the checker pins it to
/// a replayable seed.
#[test]
fn fig1_publish_before_wait_is_caught_and_replays() {
    let cfg = Config::default().schedules_from_env(1000);
    let failure = sched::explore(&cfg, || fig1_body(true))
        .expect_err("exploration must catch the premature publication");
    assert!(
        failure.message.contains("pending updates after wait"),
        "unexpected failure: {}",
        failure.message
    );
    let replayed = sched::replay(failure.seed, cfg.policy, cfg.max_steps, || fig1_body(true))
        .expect_err("the failing seed must fail on replay");
    assert_eq!(replayed, failure.message, "replay is deterministic");
}
