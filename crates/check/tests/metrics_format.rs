//! End-to-end check that the expositions `graphblas_obs::export`
//! actually renders satisfy the reader in `graphblas_check::metrics`.
//!
//! The unit tests inside `metrics` run the validator on hand-written
//! text; this test closes the loop against the real writer: record
//! kernel and pool work (including a context name that needs label
//! escaping), render with `export::render()`, and validate the result.

use graphblas_check::metrics;
use graphblas_obs::counters::Kernel;

#[test]
fn rendered_exposition_round_trips() {
    graphblas_obs::set_enabled(true);
    graphblas_obs::counters::record_kernel(Kernel::SpGemm, 2_048, 100, 50, 10, 4_096);
    graphblas_obs::counters::record_kernel(Kernel::SpMv, 1_024, 40, 40, 8, 2_048);
    graphblas_obs::counters::record_pool_enqueue(3);
    graphblas_obs::counters::record_pool_dequeue();
    graphblas_obs::counters::record_pool_task(0, 500, 1_500);
    // A context whose name exercises label escaping in the writer, plus a
    // same-named sibling that forces the `#id` disambiguation.
    graphblas_obs::register_context(900_001, 0, Some("fmt \"quoted\"\\slash"));
    graphblas_obs::register_context(900_002, 0, Some("twin"));
    graphblas_obs::register_context(900_003, 0, Some("twin"));

    let text = graphblas_obs::export::render();
    graphblas_obs::set_enabled(false);

    let summary = metrics::validate(&text)
        .unwrap_or_else(|e| panic!("rendered exposition failed validation: {e}\n{text}"));

    // Every registry family the writer renders must survive the reader,
    // and the full registry is far larger than the acceptance floor.
    assert!(
        summary.families.len() >= 10,
        "expected >= 10 families, got {}",
        summary.families.len()
    );

    // Spot-check the scheduler and kernel families the scrape gate
    // requires, with values matching what was recorded above.
    let calls = summary
        .family("grb_kernel_calls")
        .expect("grb_kernel_calls family");
    assert_eq!(calls.kind, "counter");
    let spgemm = calls
        .samples
        .iter()
        .find(|s| s.label("kernel") == Some("spgemm"))
        .expect("spgemm sample");
    assert!(spgemm.value >= 1.0, "spgemm calls: {}", spgemm.value);

    for family in [
        "grb_pool_queue_depth",
        "grb_pool_queue_depth_max",
        "grb_pool_task_wait_ns",
        "grb_pool_task_run_ns",
        "grb_pool_utilization",
        "grb_kernel_rate",
        "grb_kernel_rolling_p99_ns",
        "grb_mem_container_live_bytes",
        "grb_sampler_samples",
    ] {
        let fam = summary
            .family(family)
            .unwrap_or_else(|| panic!("missing family {family}\n{text}"));
        assert!(!fam.samples.is_empty(), "family {family} has no samples");
    }
    assert!(
        summary.scalar("grb_pool_task_wait_ns").unwrap_or(0.0) >= 500.0,
        "recorded wait time missing"
    );

    // The escaped context label must round-trip through writer + reader,
    // and duplicate names must have been disambiguated with `#id`.
    let ctx_spans = summary.family("grb_ctx_spans").expect("grb_ctx_spans");
    assert!(
        ctx_spans
            .samples
            .iter()
            .any(|s| s.label("ctx") == Some("fmt \"quoted\"\\slash")),
        "escaped context label mangled: {:?}",
        ctx_spans.samples
    );
    for id in [900_002u64, 900_003] {
        let want = format!("twin#{id}");
        assert!(
            ctx_spans.samples.iter().any(|s| s.label("ctx") == Some(want.as_str())),
            "missing disambiguated label {want}: {:?}",
            ctx_spans.samples
        );
    }
}
