//! Seeded data-race regression tests for the vector-clock detector.
//!
//! Each test plants a race the detector must find, then replays the
//! reported seed and asserts the failure message is **byte-for-byte**
//! identical — the property that turns a discovered race into a
//! deterministic regression test (ROADMAP: model-checker determinism).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use graphblas_check::sched::{explore, replay, Config, Policy};
use graphblas_check::sync::{thread, AtomicBool, Mutex, RaceCell};

/// Two unsynchronized writes to the same cell: a race in every schedule.
fn unsynchronized_writes() {
    let c = Arc::new(RaceCell::new(0u32, "cell"));
    let c2 = c.clone();
    let h = thread::spawn(move || c2.write(1));
    c.write(2);
    h.join();
}

#[test]
fn unsynchronized_writes_are_flagged_and_replay_byte_exact() {
    let cfg = Config {
        schedules: 10,
        ..Config::default()
    };
    let failure = explore(&cfg, unsynchronized_writes).unwrap_err();
    assert!(
        failure.message.contains("data race on `cell`"),
        "expected a data-race report, got: {}",
        failure.message
    );
    // The reported seed must reproduce the identical report, twice.
    let r1 = replay(failure.seed, cfg.policy, cfg.max_steps, unsynchronized_writes).unwrap_err();
    let r2 = replay(failure.seed, cfg.policy, cfg.max_steps, unsynchronized_writes).unwrap_err();
    assert_eq!(r1, failure.message, "replay must match the explore report");
    assert_eq!(r1, r2, "replay must be deterministic");
}

/// The unsynchronized-publish bug grbsa flags statically, as a dynamic
/// protocol: the writer publishes `payload` through a *relaxed* flag
/// store, so a reader that observes the flag still has no happens-before
/// edge to the payload write.
fn relaxed_publish() {
    let data = Arc::new(RaceCell::new(0u32, "payload"));
    let flag = Arc::new(AtomicBool::new(false));
    let (d2, f2) = (data.clone(), flag.clone());
    let h = thread::spawn(move || {
        d2.write(42);
        f2.store(true, Ordering::Relaxed); // BUG: publish without release
    });
    if flag.load(Ordering::Acquire) {
        let _ = data.read(); // unordered with the write above
    }
    h.join();
}

#[test]
fn relaxed_publish_races_and_replays_byte_exact() {
    let cfg = Config {
        schedules: 500,
        ..Config::default()
    };
    let failure = explore(&cfg, relaxed_publish).unwrap_err();
    assert!(
        failure.message.contains("data race on `payload`"),
        "expected a data-race report, got: {}",
        failure.message
    );
    let r1 = replay(failure.seed, cfg.policy, cfg.max_steps, relaxed_publish).unwrap_err();
    assert_eq!(r1, failure.message);
}

#[test]
fn release_publish_fixes_the_race() {
    // Same protocol with the store strengthened to Release: race-free
    // across the same schedule count that finds the relaxed bug.
    let fixed = || {
        let data = Arc::new(RaceCell::new(0u32, "payload"));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        let h = thread::spawn(move || {
            d2.write(42);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.read(), 42);
        }
        h.join();
    };
    let cfg = Config {
        schedules: 500,
        ..Config::default()
    };
    explore(&cfg, fixed).unwrap();
}

#[test]
fn lock_protected_counter_is_race_free_under_pct() {
    // The mutex release→acquire edge must order the plain accesses even
    // under PCT's adversarial priority schedules.
    let cfg = Config {
        schedules: 200,
        policy: Policy::Pct { depth: 3 },
        ..Config::default()
    };
    explore(&cfg, || {
        let m = Arc::new(Mutex::new(()));
        let c = Arc::new(RaceCell::new(0u32, "counter"));
        let mut hs = Vec::new();
        for _ in 0..3 {
            let (m2, c2) = (m.clone(), c.clone());
            hs.push(thread::spawn(move || {
                let _g = m2.lock();
                let v = c2.read();
                c2.write(v + 1);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(c.read(), 3);
    })
    .unwrap();
}

#[test]
fn forgetting_the_lock_on_one_path_is_caught() {
    // Two writers take the lock, one "forgot": the detector must find an
    // interleaving where the unlocked write races a locked one.
    let buggy = || {
        let m = Arc::new(Mutex::new(()));
        let c = Arc::new(RaceCell::new(0u32, "partially-guarded"));
        let (m2, c2) = (m.clone(), c.clone());
        let h = thread::spawn(move || {
            let _g = m2.lock();
            let v = c2.read();
            c2.write(v + 1);
        });
        c.write(10); // BUG: no lock held
        h.join();
    };
    let cfg = Config {
        schedules: 100,
        ..Config::default()
    };
    let failure = explore(&cfg, buggy).unwrap_err();
    assert!(
        failure.message.contains("data race on `partially-guarded`"),
        "got: {}",
        failure.message
    );
    let r = replay(failure.seed, cfg.policy, cfg.max_steps, buggy).unwrap_err();
    assert_eq!(r, failure.message);
}
