//! End-to-end check that the Chrome traces `graphblas_obs::timeline`
//! actually exports satisfy the reader in `graphblas_check::trace`.
//!
//! The unit tests inside `trace` run the validator on hand-written JSON;
//! this test closes the loop against the real writer: record nested
//! phases (including a name that needs JSON escaping) on two threads,
//! export with `to_chrome_trace()`, and validate the result.

use graphblas_check::trace;

#[test]
fn exported_trace_is_balanced_and_escaped() {
    graphblas_obs::set_enabled(true);
    graphblas_obs::timeline::set_timeline(true);

    {
        let _outer = graphblas_obs::timeline::phase("fmt.outer");
        // Keep the timestamps strictly ordered so the exporter's
        // tie-breaking cannot flatten the nesting this test asserts on.
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _inner = graphblas_obs::timeline::phase("fmt.\"inner\"\n\ttab\\");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let worker = std::thread::spawn(|| {
        graphblas_obs::timeline::register_thread();
        let _p = graphblas_obs::timeline::phase("fmt.worker");
    });
    worker.join().expect("worker panicked");

    let json = graphblas_obs::timeline::to_chrome_trace();
    graphblas_obs::timeline::set_timeline(false);
    graphblas_obs::set_enabled(false);

    let summary = trace::validate(&json)
        .unwrap_or_else(|e| panic!("exported trace failed validation: {e}\n{json}"));
    assert!(summary.regions >= 3, "expected >= 3 regions: {summary:?}");
    assert!(
        summary.threads.len() >= 2,
        "expected >= 2 threads: {summary:?}"
    );
    assert!(summary.max_depth >= 2, "expected nesting: {summary:?}");
    // The escaped name must round-trip through writer + reader intact.
    assert!(
        summary
            .names
            .iter()
            .any(|n| n == "fmt.\"inner\"\n\ttab\\"),
        "escaped name mangled: {:?}",
        summary.names
    );
    // Every recording thread gets an M-metadata thread_name record and a
    // matching thread_sort_index record (deterministic Perfetto order).
    for tid in &summary.threads {
        assert!(
            summary.thread_names.iter().any(|(t, _)| t == tid),
            "tid {tid} has no thread_name metadata: {summary:?}"
        );
        assert!(
            summary.thread_sort_indices.iter().any(|(t, _)| t == tid),
            "tid {tid} has no thread_sort_index metadata: {summary:?}"
        );
    }
    // The main test thread sorts ahead of the anonymous helper thread.
    if let Some((main_tid, _)) = summary
        .thread_names
        .iter()
        .find(|(_, n)| n == "main" || n.starts_with("exported_trace"))
    {
        let main_idx = summary
            .thread_sort_indices
            .iter()
            .find(|(t, _)| t == main_tid)
            .map(|(_, s)| *s);
        assert!(main_idx.is_some());
    }
}
