//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, exposing the subset of its API the bench targets use:
//! [`Criterion::benchmark_group`], group configuration
//! (`sample_size` / `warm_up_time` / `measurement_time`),
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Methodology: each benchmark warms up for `warm_up_time`, estimates a
//! per-iteration cost, then takes `sample_size` samples sized to fill
//! `measurement_time` between them and reports the median per-iteration
//! wall time on stdout. That is deliberately cruder than real criterion
//! (no outlier analysis, no saved baselines) but keeps relative numbers
//! meaningful while building offline with zero dependencies.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle, created by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors criterion's builder entry point; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter,
/// displayed as `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = self.bencher();
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            median: None,
            samples: 0,
        }
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        match b.median {
            Some(median) => println!(
                "{}/{}: median {} over {} samples",
                self.name,
                id.id,
                fmt_duration(median),
                b.samples
            ),
            None => println!("{}/{}: no measurement taken", self.name, id.id),
        }
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    median: Option<Duration>,
    samples: usize,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);

        // Size each sample so all samples together fill measurement_time.
        let per_sample_ns =
            (self.measurement_time.as_nanos() / self.sample_size.max(1) as u128).max(1);
        let iters_per_sample = (per_sample_ns / per_iter.max(1)).clamp(1, u128::from(u32::MAX));

        let mut sample_means: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            sample_means.push(start.elapsed() / iters_per_sample as u32);
        }
        sample_means.sort_unstable();
        self.samples = sample_means.len();
        self.median = Some(sample_means[sample_means.len() / 2]);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Defines a group function invoking each registered bench target with a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("spmv", 1024).id, "spmv/1024");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn iter_records_a_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(15));
        let mut b = group.bencher();
        b.iter(|| std::hint::black_box(2u64).pow(10));
        assert!(b.median.is_some());
        assert_eq!(b.samples, 3);
        group.finish();
    }
}
