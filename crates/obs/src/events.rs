//! Reason-coded decision provenance — the *why* layer of the telemetry
//! stack.
//!
//! The counters answer *how often* the runtime pushed instead of pulled,
//! hit the workspace cache, or fused a map run; the timeline answers
//! *when*. Neither answers *why a particular operation* took the path it
//! did. This module does: every choice point in the runtime — the Beamer
//! push/pull dispatch (paper §II's static-dispatch motivation applied at
//! runtime), workspace checkout hit/miss, pending-op fuse vs flush (§III
//! completion latitude), format conversions, and §V poisoning/error
//! deferral — emits one [`DecisionEvent`] carrying a [`Reason`] code and
//! the numbers that decided it (observed frontier density and the
//! threshold, chain length and trigger, source format and nnz, …).
//!
//! Events land in bounded per-thread rings mirroring [`crate::timeline`]:
//! each thread owns an `Arc<Mutex<ring>>` registered once and cached in
//! TLS, so the hot path takes an uncontended lock on its own ring — no
//! cross-thread contention, fixed memory (`GRB_EVENTS_CAPACITY` records
//! per thread, default 4096, oldest overwritten). Lifetime per-reason
//! aggregates are plain relaxed counters and survive ring truncation.
//!
//! Recording requires [`crate::enabled`] *and* [`events_requested`] —
//! when either is off the per-site cost is two relaxed loads (the
//! events-off fast path the overhead tests bound). Requested defaults to
//! on (`GRB_EVENTS=0` opts out); setting `GRB_EXPLAIN=<path>` implies
//! telemetry the same way `GRB_TRACE` does, and
//! [`write_explain_if_requested`] exports the full history there as
//! hand-written JSON (`graphblas-obs/explain/v1`), the file `grbexplain`
//! reads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::JsonWriter;
use crate::span;

/// Default per-thread decision-ring capacity (records, not bytes).
pub const DEFAULT_EVENTS_CAPACITY: usize = 4096;

/// Number of [`Reason`] codes (array sizing).
pub const REASON_COUNT: usize = 18;

/// Why the runtime did what it did: one code per choice point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// mxv/vxm dispatched the push (scatter) kernel: frontier density
    /// below the Beamer threshold.
    DirectionPush,
    /// mxv/vxm dispatched the pull (dot-product) kernel: frontier density
    /// at or above the Beamer threshold.
    DirectionPull,
    /// A workspace checkout was served from the thread's cache.
    WorkspaceHit,
    /// A workspace checkout allocated fresh (nothing cached for the type).
    WorkspaceMiss,
    /// A thread's workspace cache was released (drop or explicit clear).
    WorkspaceTrim,
    /// A run of pending map stages flushed as one fused traversal.
    FuseFlush,
    /// An opaque pending stage executed (the fusion barrier).
    OpaqueDrain,
    /// A container store converted to CSR (source format in `detail`).
    ConvertCsr,
    /// A vector store canonicalized to sorted sparse (source in `detail`).
    ConvertSparse,
    /// The memoized transpose was (re)computed for the current store.
    TransposeBuild,
    /// The memoized transpose was served from cache (O(1)).
    TransposeHit,
    /// A sparse kernel chose an internal execution path (e.g. the spmv
    /// dense-frontier fast path); which one is in `detail`.
    KernelPath,
    /// An execution error was constructed (§V; kind in `detail`).
    ErrorRaised,
    /// A drain failed and poisoned its container (§V deferred error).
    ErrorDeferred,
    /// An operation resolved its semiring/operator dispatch: `detail` is
    /// "static" (pre-monomorphized registry kernel, paper §II) or "dyn"
    /// (erased-closure fallback).
    DispatchPick,
    /// The mxv/vxm store path picked a vector storage format for its
    /// result: `detail` is "bitmap" or "sparse" (Table III).
    FormatPick,
    /// An op-DAG node drained with neighbouring map stages fused into its
    /// kernel (§III cross-operation fusion): `detail` is the node kind,
    /// payload counts the pre-maps (input side) and post-maps (output
    /// side) absorbed.
    DagFuse,
    /// A lazy op DAG was forced to drain; `detail` says what forced it
    /// ("read", "wait", "async", "self-input").
    DagForce,
}

impl Reason {
    /// The stable kebab-case code used in JSON exports, `grbexplain`
    /// assertions, and DESIGN.md §4a.
    pub fn code(self) -> &'static str {
        match self {
            Reason::DirectionPush => "direction-push",
            Reason::DirectionPull => "direction-pull",
            Reason::WorkspaceHit => "workspace-hit",
            Reason::WorkspaceMiss => "workspace-miss",
            Reason::WorkspaceTrim => "workspace-trim",
            Reason::FuseFlush => "fuse-flush",
            Reason::OpaqueDrain => "opaque-drain",
            Reason::ConvertCsr => "convert-csr",
            Reason::ConvertSparse => "convert-sparse",
            Reason::TransposeBuild => "transpose-build",
            Reason::TransposeHit => "transpose-hit",
            Reason::KernelPath => "kernel-path",
            Reason::ErrorRaised => "error-raised",
            Reason::ErrorDeferred => "error-deferred",
            Reason::DispatchPick => "dispatch-pick",
            Reason::FormatPick => "format-pick",
            Reason::DagFuse => "dag-fuse",
            Reason::DagForce => "dag-force",
        }
    }

    /// Every reason code, in a stable order (JSON key order).
    pub fn all() -> [Reason; REASON_COUNT] {
        [
            Reason::DirectionPush,
            Reason::DirectionPull,
            Reason::WorkspaceHit,
            Reason::WorkspaceMiss,
            Reason::WorkspaceTrim,
            Reason::FuseFlush,
            Reason::OpaqueDrain,
            Reason::ConvertCsr,
            Reason::ConvertSparse,
            Reason::TransposeBuild,
            Reason::TransposeHit,
            Reason::KernelPath,
            Reason::ErrorRaised,
            Reason::ErrorDeferred,
            Reason::DispatchPick,
            Reason::FormatPick,
            Reason::DagFuse,
            Reason::DagForce,
        ]
    }

    fn index(self) -> usize {
        match self {
            Reason::DirectionPush => 0,
            Reason::DirectionPull => 1,
            Reason::WorkspaceHit => 2,
            Reason::WorkspaceMiss => 3,
            Reason::WorkspaceTrim => 4,
            Reason::FuseFlush => 5,
            Reason::OpaqueDrain => 6,
            Reason::ConvertCsr => 7,
            Reason::ConvertSparse => 8,
            Reason::TransposeBuild => 9,
            Reason::TransposeHit => 10,
            Reason::KernelPath => 11,
            Reason::ErrorRaised => 12,
            Reason::ErrorDeferred => 13,
            Reason::DispatchPick => 14,
            Reason::FormatPick => 15,
            Reason::DagFuse => 16,
            Reason::DagForce => 17,
        }
    }

    /// Names for the three numeric payload slots (`""` = slot unused).
    /// These become the per-event JSON keys, so the export is
    /// self-describing.
    pub fn arg_names(self) -> [&'static str; 3] {
        match self {
            Reason::DirectionPush | Reason::DirectionPull => {
                ["frontier_nnz", "frontier_len", "threshold_den"]
            }
            Reason::WorkspaceHit | Reason::WorkspaceMiss => ["bytes", "n", "generation"],
            Reason::WorkspaceTrim => ["bytes", "entries", ""],
            Reason::FuseFlush => ["chain_len", "nnz_in", ""],
            Reason::OpaqueDrain => ["", "", ""],
            Reason::ConvertCsr | Reason::ConvertSparse => ["nnz", "", ""],
            Reason::TransposeBuild | Reason::TransposeHit => ["nnz", "", ""],
            Reason::KernelPath => ["nnz", "len", ""],
            Reason::ErrorRaised => ["code", "", ""],
            Reason::ErrorDeferred => ["", "", ""],
            Reason::DispatchPick => ["", "", ""],
            Reason::FormatPick => ["nnz", "len", ""],
            Reason::DagFuse => ["pre_maps", "post_maps", "nnz_in"],
            Reason::DagForce => ["depth", "", ""],
        }
    }
}

/// One runtime decision: what was chosen, where, and the numbers that
/// drove the choice (slot meanings per reason in [`Reason::arg_names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionEvent {
    /// Process-global sequence number (total order across threads).
    pub seq: u64,
    pub reason: Reason,
    /// The deciding site ("mxv", "vxm", "workspace", "matrix.drain", …).
    pub op: &'static str,
    /// Reason-specific text payload (source format, workspace type,
    /// fuse trigger, error kind); `""` when unused.
    pub detail: &'static str,
    /// Owning context id (0 when the site has no context in scope).
    pub ctx: u64,
    /// Thread tag, resolvable via [`span::thread_name`].
    pub thread: u32,
    /// Microseconds since the telemetry epoch.
    pub t_us: u64,
    /// Numeric payload, named by [`Reason::arg_names`].
    pub args: [u64; 3],
}

// --- on/off knob ----------------------------------------------------------

static EVENTS_ON: OnceLock<AtomicBool> = OnceLock::new();

fn events_flag() -> &'static AtomicBool {
    EVENTS_ON.get_or_init(|| {
        // Default on (aggregates are cheap and explain() should work out
        // of the box whenever telemetry is enabled); GRB_EVENTS=0 opts
        // out, GRB_EXPLAIN re-requests explicitly.
        let via_export = std::env::var("GRB_EXPLAIN")
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        let requested = match std::env::var("GRB_EVENTS") {
            Ok(v) => !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"),
            Err(_) => true,
        };
        AtomicBool::new(via_export || requested)
    })
}

/// Whether decision recording is requested. Recording also requires
/// [`crate::enabled`]; sites check [`on`] which combines both.
#[inline]
pub fn events_requested() -> bool {
    events_flag().load(Ordering::Relaxed)
}

/// Whether decision events are being collected right now (telemetry on
/// *and* events requested). The events-off fast path is exactly this
/// check: two relaxed loads, nothing else.
#[inline]
pub fn on() -> bool {
    crate::enabled() && events_requested()
}

/// Turns decision recording on or off at runtime. Turning it on does not
/// by itself enable telemetry (`set_enabled(true)` still gates).
pub fn set_events(on: bool) {
    // grbsa: protocol(mode-flag) — advisory toggle; acting on a stale
    // value loses at most one event, never correctness.
    events_flag().store(on, Ordering::Relaxed);
}

// --- per-thread rings + lifetime aggregates -------------------------------

struct EvRing {
    buf: Vec<DecisionEvent>,
    capacity: usize,
    written: u64,
}

impl EvRing {
    fn push(&mut self, ev: DecisionEvent) {
        let slot = (self.written % self.capacity as u64) as usize;
        if slot < self.buf.len() {
            self.buf[slot] = ev;
        } else {
            self.buf.push(ev);
        }
        self.written += 1;
    }

    fn chronological(&self) -> Vec<DecisionEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        let start = self.written.saturating_sub(self.buf.len() as u64);
        for i in start..self.written {
            out.push(self.buf[(i % self.capacity as u64) as usize]);
        }
        out
    }
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("GRB_EVENTS_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_EVENTS_CAPACITY)
    })
}

static RINGS: Mutex<Vec<(u32, Arc<Mutex<EvRing>>)>> = Mutex::new(Vec::new());

thread_local! {
    static MY_RING: Arc<Mutex<EvRing>> = {
        let tag = span::thread_tag();
        let ring = Arc::new(Mutex::new(EvRing {
            buf: Vec::new(),
            capacity: ring_capacity(),
            written: 0,
        }));
        let mut rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        rings.push((tag, ring.clone()));
        ring
    };
}

/// Global sequence source: `SEQ - 1` events have ever been recorded.
static SEQ: AtomicU64 = AtomicU64::new(1);

/// Lifetime per-reason counts (monotonic; survive ring truncation).
static REASON_COUNTS: [AtomicU64; REASON_COUNT] =
    [const { AtomicU64::new(0) }; REASON_COUNT];

/// Total decision events ever recorded (including overwritten ones).
pub fn total() -> u64 {
    SEQ.load(Ordering::Relaxed) - 1
}

/// Lifetime count for one reason code.
pub fn count(reason: Reason) -> u64 {
    REASON_COUNTS[reason.index()].load(Ordering::Relaxed)
}

/// Lifetime counts for every reason code, in [`Reason::all`] order.
pub fn reason_counts() -> Vec<(Reason, u64)> {
    Reason::all().iter().map(|&r| (r, count(r))).collect()
}

/// Records one decision. Callers should guard on [`on`] to keep the
/// disabled path at two relaxed loads; `record` re-checks so an unguarded
/// call is safe, just slower.
pub fn record(
    reason: Reason,
    op: &'static str,
    detail: &'static str,
    ctx: u64,
    args: [u64; 3],
) {
    if !on() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    REASON_COUNTS[reason.index()].fetch_add(1, Ordering::Relaxed);
    let ev = DecisionEvent {
        seq,
        reason,
        op,
        detail,
        ctx,
        thread: span::thread_tag(),
        t_us: span::epoch().elapsed().as_micros() as u64,
        args,
    };
    MY_RING.with(|ring| {
        ring.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    });
}

// --- site helpers ---------------------------------------------------------
//
// Each decision site calls one of these (the `decision-without-event`
// grblint rule looks for `events::decision` next to the counter calls).

/// Direction pick in mxv/vxm: density `frontier_nnz / frontier_len`
/// against the Beamer threshold `1 / threshold_den`.
#[inline]
pub fn decision_direction(
    op: &'static str,
    ctx: u64,
    pull: bool,
    frontier_nnz: u64,
    frontier_len: u64,
    threshold_den: u64,
) {
    let reason = if pull {
        Reason::DirectionPull
    } else {
        Reason::DirectionPush
    };
    record(reason, op, "", ctx, [frontier_nnz, frontier_len, threshold_den]);
}

/// Workspace checkout: `ty` is the workspace's type name, `generation`
/// the thread's checkout ordinal, `bytes` the reused buffer bytes (0 on
/// a miss).
#[inline]
pub fn decision_workspace(ty: &'static str, hit: bool, n: u64, bytes: u64, generation: u64) {
    let reason = if hit {
        Reason::WorkspaceHit
    } else {
        Reason::WorkspaceMiss
    };
    record(reason, "workspace", ty, 0, [bytes, n, generation]);
}

/// A thread's workspace cache released `entries` cached buffers holding
/// `bytes` recorded bytes.
#[inline]
pub fn decision_workspace_trim(entries: u64, bytes: u64) {
    record(Reason::WorkspaceTrim, "workspace", "", 0, [bytes, entries, 0]);
}

/// A pending map run of `chain_len` stages flushed as one traversal over
/// `nnz_in` entries; `trigger` says what forced it ("opaque-barrier" or
/// "queue-end").
#[inline]
pub fn decision_fuse_flush(
    op: &'static str,
    ctx: u64,
    chain_len: u64,
    nnz_in: u64,
    trigger: &'static str,
) {
    record(Reason::FuseFlush, op, trigger, ctx, [chain_len, nnz_in, 0]);
}

/// An opaque pending stage executed (fusion barrier).
#[inline]
pub fn decision_opaque_drain(op: &'static str, ctx: u64) {
    record(Reason::OpaqueDrain, op, "", ctx, [0, 0, 0]);
}

/// A store converted to CSR from `src` ("csc", "coo", "dense",
/// "unsorted"), now holding `nnz` entries.
#[inline]
pub fn decision_convert_csr(op: &'static str, ctx: u64, src: &'static str, nnz: u64) {
    record(Reason::ConvertCsr, op, src, ctx, [nnz, 0, 0]);
}

/// A vector store canonicalized to sorted sparse from `src` ("dense",
/// "unsorted"), now holding `nnz` entries.
#[inline]
pub fn decision_convert_sparse(op: &'static str, ctx: u64, src: &'static str, nnz: u64) {
    record(Reason::ConvertSparse, op, src, ctx, [nnz, 0, 0]);
}

/// Transpose-cache consult: a hit serves the memo, a build computes (and
/// `detail` distinguishes a cold build from one invalidating a stale
/// entry).
#[inline]
pub fn decision_transpose(ctx: u64, hit: bool, detail: &'static str, nnz: u64) {
    let reason = if hit {
        Reason::TransposeHit
    } else {
        Reason::TransposeBuild
    };
    record(reason, "transpose-cache", detail, ctx, [nnz, 0, 0]);
}

/// A sparse kernel picked internal path `path` (e.g. spmv
/// "dense-frontier" vs "sparse-frontier") for an input of `nnz`/`len`.
#[inline]
pub fn decision_kernel_path(op: &'static str, ctx: u64, path: &'static str, nnz: u64, len: u64) {
    record(Reason::KernelPath, op, path, ctx, [nnz, len, 0]);
}

/// An execution error was constructed (`kind` is the §V error kind,
/// `code` the magnitude of its negative `GrB_Info` value, e.g. 105 for
/// `GrB_INDEX_OUT_OF_BOUNDS` = -105).
#[inline]
pub fn decision_error_raised(kind: &'static str, code: u64) {
    record(Reason::ErrorRaised, "error", kind, 0, [code, 0, 0]);
}

/// A drain failed and poisoned its container (§V deferral surfaced).
#[inline]
pub fn decision_error_deferred(op: &'static str, ctx: u64) {
    record(Reason::ErrorDeferred, op, "poisoned", ctx, [0, 0, 0]);
}

/// An operation resolved its kernel dispatch: `is_static` means a
/// pre-monomorphized registry kernel ran (paper §II static dispatch);
/// otherwise the erased-closure fallback did.
#[inline]
pub fn decision_dispatch(op: &'static str, ctx: u64, is_static: bool) {
    let detail = if is_static { "static" } else { "dyn" };
    record(Reason::DispatchPick, op, detail, ctx, [0, 0, 0]);
}

/// The store path picked a vector storage format (`bitmap` = presence
/// bits + dense slots) for a result of `nnz`/`len` (Table III).
#[inline]
pub fn decision_format(op: &'static str, ctx: u64, bitmap: bool, nnz: u64, len: u64) {
    let detail = if bitmap { "bitmap" } else { "sparse" };
    record(Reason::FormatPick, op, detail, ctx, [nnz, len, 0]);
}

/// An op-DAG node of kind `kind` drained absorbing `pre_maps` input-side
/// and `post_maps` output-side map stages over `nnz_in` input entries
/// (§III cross-operation fusion actually firing).
#[inline]
pub fn decision_dag_fuse(
    op: &'static str,
    ctx: u64,
    kind: &'static str,
    pre_maps: u64,
    post_maps: u64,
    nnz_in: u64,
) {
    record(Reason::DagFuse, op, kind, ctx, [pre_maps, post_maps, nnz_in]);
}

/// A lazy op DAG was forced to drain `depth` queued stages; `cause` says
/// what forced it ("read", "wait", "async", "self-input").
#[inline]
pub fn decision_dag_force(op: &'static str, ctx: u64, cause: &'static str, depth: u64) {
    record(Reason::DagForce, op, cause, ctx, [depth, 0, 0]);
}

// --- reading / explain ----------------------------------------------------

fn all_events() -> Vec<DecisionEvent> {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<DecisionEvent> = rings
        .iter()
        .flat_map(|(_, ring)| {
            ring.lock()
                .unwrap_or_else(|e| e.into_inner())
                .chronological()
        })
        .collect();
    out.sort_by_key(|e| e.seq);
    out
}

/// The retained decision history, oldest first, at most `last_n` events
/// (the newest ones).
pub fn recent(last_n: usize) -> Vec<DecisionEvent> {
    let mut evs = all_events();
    if evs.len() > last_n {
        evs.drain(..evs.len() - last_n);
    }
    evs
}

/// A `GrB_explain`-style view: the retained decision history plus
/// per-reason aggregates, serializable to JSON.
#[derive(Debug, Clone)]
pub struct Explain {
    /// Decision events ever recorded process-wide (≥ `events.len()`; the
    /// excess was overwritten in the rings or filtered out).
    pub total: u64,
    /// Per-reason counts backing the JSON `reasons` block. For the global
    /// [`explain`] these are the lifetime aggregates (authoritative even
    /// after ring truncation); for [`explain_for_subtree`] they count the
    /// returned events only.
    pub counts: Vec<(Reason, u64)>,
    /// The retained events, oldest first.
    pub events: Vec<DecisionEvent>,
}

impl Explain {
    /// The aggregate count for one reason code.
    pub fn count(&self, reason: Reason) -> u64 {
        self.counts
            .iter()
            .find(|(r, _)| *r == reason)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Serializes as `graphblas-obs/explain/v1` JSON (the `GRB_EXPLAIN`
    /// export format `grbexplain` reads): schema, totals, a `reasons`
    /// object with every code, and the event array with per-reason named
    /// payload keys.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string("graphblas-obs/explain/v1");
        w.key("total");
        w.number(self.total);
        w.key("retained");
        w.number(self.events.len() as u64);
        w.key("reasons");
        w.begin_object();
        for (r, c) in &self.counts {
            w.key(r.code());
            w.number(*c);
        }
        w.end_object();
        w.key("events");
        w.begin_array();
        for ev in &self.events {
            w.begin_object();
            w.key("seq");
            w.number(ev.seq);
            w.key("reason");
            w.string(ev.reason.code());
            w.key("op");
            w.string(ev.op);
            w.key("ctx");
            w.number(ev.ctx);
            w.key("thread");
            match span::thread_name(ev.thread) {
                Some(n) => w.string(&n),
                None => w.string(&format!("thread-{}", ev.thread)),
            }
            w.key("t_us");
            w.number(ev.t_us);
            if !ev.detail.is_empty() {
                w.key("detail");
                w.string(ev.detail);
            }
            for (name, val) in ev.reason.arg_names().iter().zip(ev.args.iter()) {
                if !name.is_empty() {
                    w.key(name);
                    w.number(*val);
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// The global decision history: the last `last_n` retained events plus
/// lifetime per-reason aggregates.
pub fn explain(last_n: usize) -> Explain {
    Explain {
        total: total(),
        counts: reason_counts(),
        events: recent(last_n),
    }
}

/// The decision history attributed to context `root_ctx` or any of its
/// registered descendants (per [`crate::ctxreg`] parent links). Events
/// with no context in scope (ctx 0, e.g. workspace checkouts inside
/// kernels) are excluded; aggregates count the returned events.
pub fn explain_for_subtree(root_ctx: u64, last_n: usize) -> Explain {
    let ids = crate::ctxreg::subtree_ids(root_ctx);
    let mut events: Vec<DecisionEvent> = all_events()
        .into_iter()
        .filter(|e| ids.contains(&e.ctx))
        .collect();
    if events.len() > last_n {
        events.drain(..events.len() - last_n);
    }
    let counts = Reason::all()
        .iter()
        .map(|&r| (r, events.iter().filter(|e| e.reason == r).count() as u64))
        .collect();
    Explain {
        total: total(),
        counts,
        events,
    }
}

/// If `GRB_EXPLAIN=<path>` is set, writes the full retained decision
/// history there as explain/v1 JSON and returns the path. Write failures
/// are reported to stderr, not fatal.
pub fn write_explain_if_requested() -> Option<String> {
    let path = std::env::var("GRB_EXPLAIN").ok().filter(|p| !p.is_empty())?;
    let json = explain(usize::MAX).to_json();
    match std::fs::write(&path, &json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("[grb-obs] failed to write GRB_EXPLAIN file {path}: {e}");
            None
        }
    }
}

/// Clears the rings and zeroes the lifetime aggregates and sequence
/// (part of [`crate::reset`]).
pub(crate) fn reset() {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    for (_, ring) in rings.iter() {
        let mut r = ring.lock().unwrap_or_else(|e| e.into_inner());
        r.buf.clear();
        r.written = 0;
    }
    // grbsa: protocol(counter-reset) — test-isolation zeroing; reset
    // points are single-threaded harness boundaries.
    for c in &REASON_COUNTS {
        c.store(0, Ordering::Relaxed);
    }
    SEQ.store(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_respects_gates() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        set_events(true);
        crate::reset();
        record(Reason::DirectionPush, "t", "", 0, [1, 2, 3]);
        assert_eq!(total(), 0, "disabled telemetry must record nothing");
        crate::set_enabled(true);
        set_events(false);
        record(Reason::DirectionPush, "t", "", 0, [1, 2, 3]);
        assert_eq!(total(), 0, "events-off fast path must record nothing");
        set_events(true);
        record(Reason::DirectionPush, "t", "", 0, [1, 2, 3]);
        assert_eq!(total(), 1);
        assert_eq!(count(Reason::DirectionPush), 1);
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn explain_orders_and_serializes() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_events(true);
        crate::reset();
        decision_direction("mxv", 7, false, 1, 64, 8);
        decision_direction("mxv", 7, true, 16, 64, 8);
        decision_workspace("acc", true, 64, 512, 3);
        decision_fuse_flush("vector.drain", 7, 4, 100, "queue-end");
        let ex = explain(usize::MAX);
        assert_eq!(ex.total, 4);
        assert_eq!(ex.events.len(), 4);
        assert!(ex.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(ex.count(Reason::DirectionPush), 1);
        assert_eq!(ex.count(Reason::DirectionPull), 1);
        assert_eq!(ex.count(Reason::WorkspaceHit), 1);
        assert_eq!(ex.count(Reason::FuseFlush), 1);
        let json = ex.to_json();
        assert!(json.contains("\"schema\":\"graphblas-obs/explain/v1\""));
        assert!(json.contains("\"direction-pull\":1"));
        assert!(json.contains("\"frontier_nnz\":16"));
        assert!(json.contains("\"chain_len\":4"));
        assert!(json.contains("\"detail\":\"queue-end\""));
        // Unused payload slots are not serialized.
        assert!(!json.contains("\"\":"));
        // last_n trims from the front (oldest dropped).
        let ex2 = explain(2);
        assert_eq!(ex2.events.len(), 2);
        assert_eq!(ex2.events[1].reason, Reason::FuseFlush);
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn subtree_filter_scopes_by_context() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_events(true);
        crate::reset();
        let base = 3_000_000_000;
        crate::ctxreg::register_context(base + 1, 0, Some("root"));
        crate::ctxreg::register_context(base + 2, base + 1, None);
        decision_direction("mxv", base + 2, true, 8, 8, 8);
        decision_direction("mxv", 999_999_999, false, 1, 8, 8); // other tree
        decision_workspace("acc", false, 8, 0, 1); // ctx 0
        let ex = explain_for_subtree(base + 1, usize::MAX);
        assert_eq!(ex.events.len(), 1);
        assert_eq!(ex.events[0].ctx, base + 2);
        assert_eq!(ex.count(Reason::DirectionPull), 1);
        assert_eq!(ex.count(Reason::WorkspaceMiss), 0);
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn ring_truncation_keeps_newest() {
        let mut r = EvRing {
            buf: Vec::new(),
            capacity: 4,
            written: 0,
        };
        for i in 0..10u64 {
            r.push(DecisionEvent {
                seq: i,
                reason: Reason::KernelPath,
                op: "x",
                detail: "",
                ctx: 0,
                thread: 1,
                t_us: i,
                args: [0; 3],
            });
        }
        let kept = r.chronological();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].seq, 6);
        assert_eq!(kept[3].seq, 9);
    }
}
