//! # graphblas-obs — runtime telemetry for `graphblas-rs`
//!
//! The GraphBLAS 2.0 nonblocking execution model (paper §III) lets the
//! implementation defer, reorder, and fuse operations, and the §V error
//! model defers execution errors until `wait` — so the *actual* work a
//! program performs is invisible at the call site. This crate makes it
//! visible without any external dependencies:
//!
//! * [`span`] / [`kernel_span`] — lightweight RAII spans recording
//!   wall-time, thread, and the active [`Context`](crate::ctxreg) id into
//!   a bounded ring-buffer event log, with an opt-in `GRB_BURBLE`-style
//!   human-readable stderr narration (SuiteSparse's `GxB_BURBLE` analogue).
//! * [`counters`] — per-kernel invocation counts, flops, input/output nnz,
//!   and bytes moved; pending-queue depth, `Stage::Map` fusion hits vs.
//!   opaque drains; pool task spawns and park/wake counts.
//! * [`ctxreg`] — per-`Context` aggregation so the hierarchical thread
//!   budget story of §IV becomes inspectable: each context exposes its
//!   descendants' rolled-up statistics.
//! * [`hist`] — lock-free log₂-bucketed latency histograms per kernel
//!   family, surfacing interpolated p50/p90/p99/max tail latency.
//! * [`timeline`] — bounded per-thread timelines of spans and nested
//!   kernel phases, exported as Chrome-trace/Perfetto JSON
//!   (`GRB_TRACE=out.json`).
//! * [`mem`] — live-bytes / high-water gauges for container stores and
//!   the kernel workspace cache, attributed to the owning context.
//! * [`snapshot`] — a `GrB_get`-style introspection surface serializing to
//!   JSON through the hand-written writer in [`json`] (no serde).
//! * [`export`] — the live telemetry plane: a metric registry under
//!   stable dotted names, a background sampler ring for window rates and
//!   rolling p99s, and a hand-rolled TCP scrape endpoint speaking the
//!   Prometheus text exposition (`GRB_METRICS_ADDR=host:port`, or
//!   `GRB_METRICS_DUMP=<path>` for a one-shot file).
//!
//! ## Cost model
//!
//! Telemetry is **disabled by default**. Every instrumentation site in the
//! hot paths guards on [`enabled`], a single relaxed atomic load plus a
//! predictable branch, so the disabled fast path compiles to near-zero
//! cost. Enable at startup with `GRB_OBS=1` (counters + spans) or
//! `GRB_BURBLE=1` (additionally narrate every span to stderr), or at
//! runtime with [`set_enabled`] / [`set_burble`].
//!
//! ```
//! graphblas_obs::set_enabled(true);
//! {
//!     let mut s = graphblas_obs::kernel_span(graphblas_obs::Kernel::SpMv, 0);
//!     s.io(100, 50, 10, 1200); // flops, nnz_in, nnz_out, bytes
//! }
//! let snap = graphblas_obs::snapshot();
//! assert!(snap.kernels.iter().any(|k| k.kernel == graphblas_obs::Kernel::SpMv));
//! let _json = snap.to_json();
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub mod counters;
pub mod ctxreg;
pub mod events;
pub mod export;
pub mod hist;
pub mod json;
pub mod mem;
pub mod snapshot;
pub mod span;
pub mod timeline;

pub use counters::{
    DagTotals, DispatchTotals, FormatTotals, Kernel, KernelTotals, PendingTotals, PoolTotals,
    KERNEL_COUNT,
};
pub use ctxreg::{register_context, ContextStats, CtxTotals};
pub use events::{
    write_explain_if_requested, DecisionEvent, Explain, Reason, REASON_COUNT,
};
pub use export::{write_dump_if_requested, Family, Sample};
pub use hist::{HistTotals, KernelHist};
pub use json::JsonWriter;
pub use mem::MemTotals;
pub use snapshot::{snapshot, Snapshot};
pub use span::{kernel_span, span, span_ctx, Event, Span};
pub use timeline::{phase, write_trace_if_requested, Phase, TlEvent};

struct Flags {
    enabled: AtomicBool,
    burble: AtomicBool,
}

static FLAGS: OnceLock<Flags> = OnceLock::new();

fn env_truthy(var: &str) -> bool {
    std::env::var(var)
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false)
}

fn flags() -> &'static Flags {
    FLAGS.get_or_init(|| {
        let burble = env_truthy("GRB_BURBLE");
        // A trace request implies telemetry: timeline records only exist
        // while spans are live, as does burble narration.
        let trace = std::env::var("GRB_TRACE")
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        // Same for an explain-export request: decision events only exist
        // while telemetry is collecting.
        let explain = std::env::var("GRB_EXPLAIN")
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        // And for the live telemetry plane: a scrape endpoint or a dump
        // request is only useful over collected counters.
        let metrics = ["GRB_METRICS_ADDR", "GRB_METRICS_DUMP"]
            .iter()
            .any(|v| std::env::var(v).map(|s| !s.is_empty()).unwrap_or(false));
        Flags {
            enabled: AtomicBool::new(
                burble || trace || explain || metrics || env_truthy("GRB_OBS"),
            ),
            burble: AtomicBool::new(burble),
        }
    })
}

/// Whether telemetry collection is on. This is the guard every
/// instrumentation site checks first; when `false` the instrumented code
/// paths do no other work.
#[inline]
pub fn enabled() -> bool {
    flags().enabled.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off at runtime. Turning it off does
/// not clear already-collected statistics (see [`reset`]).
pub fn set_enabled(on: bool) {
    // grbsa: protocol(mode-flag) — advisory toggle; a racing reader may
    // record or skip one extra span, never corrupt state.
    flags().enabled.store(on, Ordering::Relaxed);
}

/// Whether burble narration (per-span stderr lines) is on.
#[inline]
pub fn burble() -> bool {
    flags().burble.load(Ordering::Relaxed)
}

/// Turns burble narration on or off. Enabling burble also enables
/// telemetry collection.
pub fn set_burble(on: bool) {
    if on {
        set_enabled(true);
    }
    // grbsa: protocol(mode-flag) — advisory toggle, same contract as
    // `set_enabled` above.
    flags().burble.store(on, Ordering::Relaxed);
}

/// Zeroes every counter and histogram, clears the event ring and the
/// per-thread timelines, resets per-context totals (context registrations
/// survive so names stay resolvable), and re-arms the memory high-water
/// marks at the current live figures (live bytes are real state and are
/// kept). Intended for tests and for bracketing a measurement region.
pub fn reset() {
    counters::reset();
    hist::reset();
    span::reset_events();
    timeline::reset();
    events::reset();
    ctxreg::reset_totals();
    mem::reset_high_water();
}

/// Serializes tests that flip the global flags (they would race under the
/// parallel test runner otherwise).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_toggle() {
        let _g = crate::test_guard();
        set_enabled(true);
        assert!(enabled());
        set_burble(false);
        assert!(!burble());
        set_enabled(false);
        assert!(!enabled());
        // Burble implies enabled.
        set_burble(true);
        assert!(enabled() && burble());
        set_burble(false);
        set_enabled(false);
    }
}
