//! Per-thread timeline tracing with Chrome-trace export.
//!
//! While the event ring in [`crate::span`] answers *what ran recently*,
//! the timeline answers *when and on which thread*: every completed span
//! and every nested [`phase`] lands in a bounded per-thread ring of
//! `(name, start_ns, end_ns)` records, and [`to_chrome_trace`] serializes
//! the rings as Chrome-trace / Perfetto `trace_event` JSON — load the file
//! at `ui.perfetto.dev` (or `chrome://tracing`) to see pending-queue
//! drains, transpose builds, and push-vs-pull flips laid out on a real
//! time axis, the §III completion latitude made visible.
//!
//! Recording is off unless `GRB_TRACE` (an output path) or
//! `GRB_TIMELINE=1` is set, or [`set_timeline`] is called; it additionally
//! requires [`crate::enabled`]. Rings are bounded (`GRB_TIMELINE_EVENTS`
//! per thread, default 8192, oldest overwritten) so always-on cost is
//! fixed. Because each thread's spans nest by RAII construction, export
//! emits begin/end pairs through an explicit stack — the output is
//! balanced per thread even when the ring has dropped old records.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonWriter;
use crate::span;

/// Default per-thread timeline ring capacity (records, not bytes).
pub const DEFAULT_TIMELINE_CAPACITY: usize = 8192;

/// One completed region on one thread's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlEvent {
    /// Region label (kernel name, phase name, …).
    pub name: &'static str,
    /// Thread tag, resolvable via [`span::thread_name`].
    pub thread: u32,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the telemetry epoch (`>= start_ns`).
    pub end_ns: u64,
}

// --- on/off knob ----------------------------------------------------------

static TIMELINE_ON: OnceLock<AtomicBool> = OnceLock::new();

fn timeline_flag() -> &'static AtomicBool {
    TIMELINE_ON.get_or_init(|| {
        let via_trace = std::env::var("GRB_TRACE").map(|v| !v.is_empty()).unwrap_or(false);
        AtomicBool::new(via_trace || crate::env_truthy("GRB_TIMELINE"))
    })
}

/// Whether timeline recording is requested. Recording also requires
/// [`crate::enabled`]; sites check [`on`] which combines both.
#[inline]
pub fn timeline_requested() -> bool {
    timeline_flag().load(Ordering::Relaxed)
}

/// Whether timeline records are being collected right now (telemetry on
/// *and* timeline requested). This is the guard every timeline site
/// checks; when collection is off it costs the two relaxed loads only.
#[inline]
pub fn on() -> bool {
    crate::enabled() && timeline_requested()
}

/// Turns timeline recording on or off at runtime. Turning it on does not
/// by itself enable telemetry (`set_enabled(true)` still gates).
pub fn set_timeline(on: bool) {
    // grbsa: protocol(mode-flag) — advisory toggle; acting on a stale
    // value loses at most one slice, never correctness.
    timeline_flag().store(on, Ordering::Relaxed);
}

// --- per-thread rings -----------------------------------------------------

struct TlRing {
    buf: Vec<TlEvent>,
    capacity: usize,
    written: u64,
}

impl TlRing {
    fn push(&mut self, ev: TlEvent) {
        let slot = (self.written % self.capacity as u64) as usize;
        if slot < self.buf.len() {
            self.buf[slot] = ev;
        } else {
            self.buf.push(ev);
        }
        self.written += 1;
    }

    /// Retained records in chronological (write) order.
    fn chronological(&self) -> Vec<TlEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        let start = self.written.saturating_sub(self.buf.len() as u64);
        for i in start..self.written {
            out.push(self.buf[(i % self.capacity as u64) as usize]);
        }
        out
    }
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("GRB_TIMELINE_EVENTS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_TIMELINE_CAPACITY)
    })
}

/// All threads' rings. A thread registers once (lazily on first record,
/// or eagerly via [`register_thread`]) and keeps an `Arc` in TLS so the
/// hot path locks only its own ring.
static RINGS: Mutex<Vec<(u32, Arc<Mutex<TlRing>>)>> = Mutex::new(Vec::new());

thread_local! {
    static MY_RING: Arc<Mutex<TlRing>> = {
        let tag = span::thread_tag();
        let ring = Arc::new(Mutex::new(TlRing {
            buf: Vec::new(),
            capacity: ring_capacity(),
            written: 0,
        }));
        let mut rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        rings.push((tag, ring.clone()));
        ring
    };
}

/// Registers the calling thread with the timeline: assigns its thread tag
/// (capturing the OS thread name) and creates its ring, so worker threads
/// appear in trace metadata even before their first recorded region.
/// Called by `exec::pool` workers at startup; idempotent and cheap.
pub fn register_thread() {
    MY_RING.with(|_| {});
}

/// Appends one completed region to the calling thread's timeline. Callers
/// must guard on [`on`].
pub fn record(name: &'static str, start_ns: u64, end_ns: u64) {
    let thread = span::thread_tag();
    MY_RING.with(|ring| {
        let mut r = ring.lock().unwrap_or_else(|e| e.into_inner());
        r.push(TlEvent {
            name,
            thread,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    });
}

/// Copies every thread's retained records: `(thread tag, chronological
/// events)` per registered thread, ordered by tag.
pub fn events_by_thread() -> Vec<(u32, Vec<TlEvent>)> {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<(u32, Vec<TlEvent>)> = rings
        .iter()
        .map(|(tag, ring)| {
            let r = ring.lock().unwrap_or_else(|e| e.into_inner());
            (*tag, r.chronological())
        })
        .collect();
    out.sort_by_key(|(tag, _)| *tag);
    out
}

pub(crate) fn reset() {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    for (_, ring) in rings.iter() {
        let mut r = ring.lock().unwrap_or_else(|e| e.into_inner());
        r.buf.clear();
        r.written = 0;
    }
}

// --- phases ---------------------------------------------------------------

/// An RAII timeline region for a *phase inside* a kernel (spgemm
/// symbolic/numeric, mxv transpose-build, drain sub-steps, …). Unlike
/// [`span::Span`] it touches no counters — it exists purely to show up on
/// the timeline, so its disabled cost is the [`on`] check.
pub struct Phase {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a phase region; recorded on drop when the timeline is [`on`].
#[inline]
pub fn phase(name: &'static str) -> Phase {
    Phase {
        name,
        start: on().then(Instant::now),
    }
}

impl Drop for Phase {
    fn drop(&mut self) {
        let Some(t0) = self.start else { return };
        let epoch = span::epoch();
        let start_ns = t0.duration_since(epoch).as_nanos() as u64;
        let end_ns = epoch.elapsed().as_nanos() as u64;
        record(self.name, start_ns, end_ns);
    }
}

// --- Chrome-trace export --------------------------------------------------

/// Serializes every thread's timeline as Chrome-trace `trace_event` JSON
/// (the object form: `{"traceEvents": [...]}`), suitable for
/// `ui.perfetto.dev` and `chrome://tracing`.
///
/// Per thread, records are sorted by start ascending (end descending on
/// ties, so enclosing regions open first) and emitted as `B`/`E` pairs
/// through an explicit stack: an open region's `E` is emitted as soon as
/// a later region starts at or after its end. The stack guarantees the
/// output is balanced and properly nested per thread regardless of ring
/// truncation. A `M`etadata `thread_name` record labels each tid, and a
/// `thread_sort_index` record pins the track order (main thread first,
/// pool workers by index) so Perfetto lays threads out deterministically
/// instead of by registration arrival.
pub fn to_chrome_trace() -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit");
    w.string("ns");
    w.key("traceEvents");
    w.begin_array();
    for (tag, mut evs) in events_by_thread() {
        let name = span::thread_name(tag).unwrap_or_else(|| format!("thread-{tag}"));
        w.begin_object();
        w.key("name");
        w.string("thread_name");
        w.key("ph");
        w.string("M");
        w.key("pid");
        w.number(1);
        w.key("tid");
        w.number(tag as u64);
        w.key("args");
        w.begin_object();
        w.key("name");
        w.string(&name);
        w.end_object();
        w.end_object();

        w.begin_object();
        w.key("name");
        w.string("thread_sort_index");
        w.key("ph");
        w.string("M");
        w.key("pid");
        w.number(1);
        w.key("tid");
        w.number(tag as u64);
        w.key("args");
        w.begin_object();
        w.key("sort_index");
        w.number(thread_sort_index(&name));
        w.end_object();
        w.end_object();

        evs.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.end_ns.cmp(&a.end_ns))
        });
        let mut stack: Vec<TlEvent> = Vec::new();
        for ev in evs {
            while let Some(top) = stack.last() {
                if top.end_ns <= ev.start_ns {
                    write_pair(&mut w, tag, *top, false);
                    stack.pop();
                } else {
                    break;
                }
            }
            write_pair(&mut w, tag, ev, true);
            stack.push(ev);
        }
        while let Some(top) = stack.pop() {
            write_pair(&mut w, tag, top, false);
        }
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// The deterministic track order for a thread name: the main thread
/// first, `grb-worker-<i>` tracks by worker index, then everything else
/// (other named threads, unnamed tags) in one trailing bucket where
/// Perfetto falls back to tid order.
pub fn thread_sort_index(name: &str) -> u64 {
    if name == "main" {
        return 0;
    }
    match name
        .strip_prefix("grb-worker-")
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(i) => i + 1,
        None => 1_000_000,
    }
}

fn write_pair(w: &mut JsonWriter, tag: u32, ev: TlEvent, begin: bool) {
    w.begin_object();
    w.key("name");
    w.string(ev.name);
    w.key("cat");
    w.string("grb");
    w.key("ph");
    w.string(if begin { "B" } else { "E" });
    w.key("pid");
    w.number(1);
    w.key("tid");
    w.number(tag as u64);
    w.key("ts");
    let ns = if begin { ev.start_ns } else { ev.end_ns };
    w.number_f64(ns as f64 / 1000.0);
    w.end_object();
}

/// If `GRB_TRACE=<path>` is set, writes the Chrome trace there and
/// returns the path. Write failures are reported to stderr, not fatal.
pub fn write_trace_if_requested() -> Option<String> {
    let path = std::env::var("GRB_TRACE").ok().filter(|p| !p.is_empty())?;
    let json = to_chrome_trace();
    match std::fs::write(&path, &json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("[grb-obs] failed to write GRB_TRACE file {path}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_records_only_when_on() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        set_timeline(false);
        reset();
        {
            let p = phase("dead");
            assert!(p.start.is_none());
        }
        crate::set_enabled(true);
        set_timeline(true);
        {
            let _p = phase("live");
        }
        let evs = events_by_thread();
        let mine: Vec<_> = evs
            .iter()
            .flat_map(|(_, v)| v.iter())
            .filter(|e| e.name == "live" || e.name == "dead")
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].name, "live");
        assert!(mine[0].end_ns >= mine[0].start_ns);
        crate::set_enabled(false);
        set_timeline(false);
        reset();
    }

    #[test]
    fn nested_phases_export_balanced() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_timeline(true);
        reset();
        {
            let _outer = phase("outer");
            let _inner = phase("inner");
        }
        let json = to_chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "unbalanced B/E pairs: {json}");
        assert!(b >= 2);
        // Inner opens after outer and closes before it.
        let outer_b = json.find("\"name\":\"outer\",\"cat\":\"grb\",\"ph\":\"B\"").unwrap();
        let inner_b = json.find("\"name\":\"inner\",\"cat\":\"grb\",\"ph\":\"B\"").unwrap();
        assert!(outer_b < inner_b, "outer must begin before inner: {json}");
        crate::set_enabled(false);
        set_timeline(false);
        reset();
    }

    #[test]
    fn sort_index_orders_main_then_workers() {
        assert_eq!(thread_sort_index("main"), 0);
        assert_eq!(thread_sort_index("grb-worker-0"), 1);
        assert_eq!(thread_sort_index("grb-worker-7"), 8);
        assert!(thread_sort_index("grb-sampler") > thread_sort_index("grb-worker-63"));
        assert!(thread_sort_index("grb-worker-nonnumeric") > 1000);
    }

    #[test]
    fn trace_carries_sort_index_metadata() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_timeline(true);
        reset();
        {
            let _p = phase("indexed");
        }
        let json = to_chrome_trace();
        assert!(
            json.contains("\"name\":\"thread_sort_index\",\"ph\":\"M\""),
            "missing sort-index metadata: {json}"
        );
        assert!(json.contains("\"sort_index\":"));
        let names = json.matches("\"name\":\"thread_name\"").count();
        let sorts = json.matches("\"name\":\"thread_sort_index\"").count();
        assert_eq!(names, sorts, "one sort-index record per thread track");
        crate::set_enabled(false);
        set_timeline(false);
        reset();
    }

    #[test]
    fn ring_truncation_keeps_newest() {
        let mut r = TlRing {
            buf: Vec::new(),
            capacity: 4,
            written: 0,
        };
        for i in 0..10u64 {
            r.push(TlEvent {
                name: "x",
                thread: 1,
                start_ns: i,
                end_ns: i + 1,
            });
        }
        let kept = r.chronological();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].start_ns, 6);
        assert_eq!(kept[3].start_ns, 9);
    }
}
