//! Memory accounting: live-bytes and high-water gauges for the Table III
//! container stores and the `exec::workspace` scratch cache.
//!
//! Containers report their store footprint at canonicalization boundaries
//! (drain / `ensure_csr` / blocking writes) via
//! [`adjust_container`], which also attributes the delta to the owning
//! context in [`crate::ctxreg`]. The workspace cache reports cached
//! scratch capacity through [`workspace`]. Gauges are relaxed atomics:
//! `live` is a saturating up/down counter, `high` a monotone max — so the
//! figures are statistics, not an allocator ledger. Two sources of
//! (documented) skew: stores shared by cloned handles are counted once
//! per reporting container, and containers resized while telemetry is
//! disabled reconcile at their next enabled boundary.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ctxreg;

/// A live-bytes gauge with a high-water mark.
pub struct Gauge {
    live: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    const fn new() -> Gauge {
        Gauge {
            live: AtomicU64::new(0),
            high: AtomicU64::new(0),
        }
    }

    /// Adds `bytes` to the live figure, advancing the high-water mark.
    pub fn add(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `bytes`, saturating at zero (a mid-run telemetry toggle
    /// can otherwise release more than was recorded).
    pub fn sub(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let _ = self
            .live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Currently-live bytes.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of the live figure.
    pub fn high(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }

    /// Re-arms the high-water mark at the current live figure. Live bytes
    /// track real allocations and survive a [`crate::reset`].
    fn reset_high(&self) {
        // grbsa: protocol(counter-reset) — re-arming the watermark is a
        // single-threaded harness-boundary operation.
        self.high.store(self.live(), Ordering::Relaxed);
    }
}

static CONTAINERS: Gauge = Gauge::new();
static WORKSPACE: Gauge = Gauge::new();

/// The gauge over all container stores (matrices, vectors).
pub fn containers() -> &'static Gauge {
    &CONTAINERS
}

/// The gauge over cached `exec::workspace` scratch capacity.
pub fn workspace() -> &'static Gauge {
    &WORKSPACE
}

/// Moves a container's reported footprint from `old` to `new` bytes,
/// updating the global container gauge and the per-context ledger for
/// `ctx` (`0` = unattributed; global gauge only).
pub fn adjust_container(ctx: u64, old: u64, new: u64) {
    if new == old {
        return;
    }
    if new > old {
        CONTAINERS.add(new - old);
    } else {
        CONTAINERS.sub(old - new);
    }
    if ctx != 0 {
        ctxreg::adjust_mem(ctx, old, new);
    }
}

/// Point-in-time copy of both gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemTotals {
    /// Live bytes across all reporting container stores.
    pub container_live: u64,
    /// High-water mark of `container_live`.
    pub container_high: u64,
    /// Bytes of scratch capacity parked in per-thread workspace caches.
    pub workspace_live: u64,
    /// High-water mark of `workspace_live`.
    pub workspace_high: u64,
}

/// Reads both gauges.
pub fn totals() -> MemTotals {
    MemTotals {
        container_live: CONTAINERS.live(),
        container_high: CONTAINERS.high(),
        workspace_live: WORKSPACE.live(),
        workspace_high: WORKSPACE.high(),
    }
}

/// Re-arms both high-water marks at the current live figures (part of
/// [`crate::reset`]; live bytes are real state and are kept).
pub(crate) fn reset_high_water() {
    CONTAINERS.reset_high();
    WORKSPACE.reset_high();
}

/// Re-arms the high-water marks without touching any other telemetry —
/// for harnesses that bracket a measured phase mid-run, where a full
/// [`crate::reset`] would wipe counters and the event ring that earlier
/// phases already contributed.
pub fn rearm_high_water() {
    reset_high_water();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_live_and_high() {
        let g = Gauge::new();
        g.add(100);
        g.add(50);
        assert_eq!(g.live(), 150);
        assert_eq!(g.high(), 150);
        g.sub(120);
        assert_eq!(g.live(), 30);
        assert_eq!(g.high(), 150, "high-water survives release");
        g.add(10);
        assert_eq!(g.high(), 150);
        g.reset_high();
        assert_eq!(g.high(), 40);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::new();
        g.add(10);
        g.sub(1000);
        assert_eq!(g.live(), 0, "underflow must clamp, not wrap");
    }

    #[test]
    fn adjust_container_feeds_ctx_ledger() {
        let _g = crate::test_guard();
        let id = 3_000_000_000;
        ctxreg::register_context(id, 0, Some("mem-test"));
        let before = totals().container_live;
        adjust_container(id, 0, 4096);
        adjust_container(id, 4096, 1024);
        assert_eq!(totals().container_live - before, 1024);
        let stats = ctxreg::context_stats(id).unwrap();
        assert_eq!(stats.own.mem_live, 1024);
        assert_eq!(stats.own.mem_high, 4096);
        // Release everything so other tests see a clean gauge.
        adjust_container(id, 1024, 0);
    }
}
