//! The `GrB_get`-style introspection surface: a consistent point-in-time
//! copy of every statistic this crate collects, serializable to JSON for
//! the bench harness (`BENCH_obs.json`).

use crate::counters::{
    self, DagTotals, DirectionTotals, DispatchTotals, FormatTotals, KernelTotals, PendingTotals,
    PoolTotals, SamplerTotals, WorkspaceTotals,
};
use crate::ctxreg::{self, ContextStats};
use crate::events::{self, Reason};
use crate::hist::{self, HistTotals, KernelHist};
use crate::json::JsonWriter;
use crate::mem::{self, MemTotals};
use crate::span::{self, Event};

/// A point-in-time copy of all telemetry. Obtain through [`snapshot`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Whether collection was enabled at snapshot time.
    pub enabled: bool,
    /// Per-kernel totals (every kernel family, including zero rows).
    pub kernels: Vec<KernelTotals>,
    /// Pending-queue / fusion statistics.
    pub pending: PendingTotals,
    /// Op-DAG statistics (§III nonblocking fused execution).
    pub dag: DagTotals,
    /// Thread-pool activity (including the scheduler metrics: queue
    /// depth, wait-vs-run split, worker busy time).
    pub pool: PoolTotals,
    /// Per-worker cumulative busy nanoseconds (`pool.workers` entries).
    pub pool_workers: Vec<u64>,
    /// Telemetry-plane self-accounting (`obs::export`).
    pub sampler: SamplerTotals,
    /// Kernel-workspace reuse statistics (`exec::workspace`).
    pub workspace: WorkspaceTotals,
    /// Direction-optimizing `mxv`/`vxm` dispatch statistics.
    pub direction: DirectionTotals,
    /// Kernel-registry static-vs-dyn dispatch statistics.
    pub dispatch: DispatchTotals,
    /// Vector storage-format (bitmap vs sparse) statistics.
    pub format: FormatTotals,
    /// Per-kernel latency histograms, in the same order as `kernels`.
    pub hists: Vec<KernelHist>,
    /// Container-store and workspace-cache memory gauges.
    pub mem: MemTotals,
    /// Per-context rollups, ordered by context id.
    pub contexts: Vec<ContextStats>,
    /// The event ring's contents, chronological.
    pub events: Vec<Event>,
    /// Total events ever recorded (≥ `events.len()`; the excess was
    /// overwritten in the ring).
    pub events_total: u64,
    /// Lifetime decision counts per reason code (`obs::events`), in
    /// [`Reason::all`] order.
    pub decisions: Vec<(Reason, u64)>,
    /// Total decision events ever recorded.
    pub decisions_total: u64,
}

/// Captures the current telemetry state. Counter families are read
/// independently (each is internally consistent; the families are not
/// mutually atomic, which is fine for statistics).
pub fn snapshot() -> Snapshot {
    let (events, events_total) = span::events();
    Snapshot {
        enabled: crate::enabled(),
        kernels: counters::kernel_totals(),
        pending: counters::pending_totals(),
        dag: counters::dag_totals(),
        pool: counters::pool_totals(),
        pool_workers: counters::worker_busy_totals(),
        sampler: counters::sampler_totals(),
        workspace: counters::workspace_totals(),
        direction: counters::direction_totals(),
        dispatch: counters::dispatch_totals(),
        format: counters::format_totals(),
        hists: hist::kernel_hists(),
        mem: mem::totals(),
        contexts: ctxreg::all_context_stats(),
        events,
        events_total,
        decisions: events::reason_counts(),
        decisions_total: events::total(),
    }
}

impl Snapshot {
    /// Sum of span wall time over all kernels, in nanoseconds.
    pub fn total_kernel_nanos(&self) -> u64 {
        self.kernels.iter().map(|k| k.nanos).sum()
    }

    /// The totals row for one kernel family.
    pub fn kernel(&self, k: counters::Kernel) -> &KernelTotals {
        self.kernels
            .iter()
            .find(|t| t.kernel == k)
            .expect("snapshot holds every kernel family")
    }

    /// The latency histogram for one kernel family.
    pub fn hist(&self, k: counters::Kernel) -> &HistTotals {
        &self
            .hists
            .iter()
            .find(|h| h.kernel == k)
            .expect("snapshot holds every kernel family")
            .hist
    }

    /// Serializes the snapshot. `include_events` controls whether the
    /// (potentially large) event log is embedded.
    pub fn to_json_with(&self, include_events: bool) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("enabled");
        w.boolean(self.enabled);

        w.key("kernels");
        w.begin_object();
        for k in &self.kernels {
            w.key(k.kernel.name());
            w.begin_object();
            w.key("calls");
            w.number(k.calls);
            w.key("nanos");
            w.number(k.nanos);
            w.key("flops");
            w.number(k.flops);
            w.key("nnz_in");
            w.number(k.nnz_in);
            w.key("nnz_out");
            w.number(k.nnz_out);
            w.key("bytes_moved");
            w.number(k.bytes_moved);
            let h = self.hist(k.kernel);
            w.key("p50_ns");
            w.number(h.p50());
            w.key("p90_ns");
            w.number(h.p90());
            w.key("p99_ns");
            w.number(h.p99());
            w.key("max_ns");
            w.number(h.max);
            w.end_object();
        }
        w.end_object();

        w.key("pending");
        w.begin_object();
        w.key("maps_enqueued");
        w.number(self.pending.maps_enqueued);
        w.key("opaques_enqueued");
        w.number(self.pending.opaques_enqueued);
        w.key("fusion_hits");
        w.number(self.pending.fusion_hits);
        w.key("map_traversals");
        w.number(self.pending.map_traversals);
        w.key("opaque_drains");
        w.number(self.pending.opaque_drains);
        w.key("drains");
        w.number(self.pending.drains);
        w.key("max_depth");
        w.number(self.pending.max_depth);
        w.key("errors_raised");
        w.number(self.pending.errors_raised);
        w.key("errors_deferred");
        w.number(self.pending.errors_deferred);
        w.end_object();

        w.key("dag");
        w.begin_object();
        w.key("nodes_enqueued");
        w.number(self.dag.nodes_enqueued);
        w.key("pre_fused");
        w.number(self.dag.pre_fused);
        w.key("post_fused");
        w.number(self.dag.post_fused);
        w.key("fused_chains");
        w.number(self.dag.fused_chains);
        w.key("async_drains");
        w.number(self.dag.async_drains);
        w.key("forces");
        w.number(self.dag.forces);
        w.end_object();

        w.key("pool");
        w.begin_object();
        w.key("tasks_spawned");
        w.number(self.pool.tasks_spawned);
        w.key("tasks_inline");
        w.number(self.pool.tasks_inline);
        w.key("parks");
        w.number(self.pool.parks);
        w.key("wakes");
        w.number(self.pool.wakes);
        w.key("scopes");
        w.number(self.pool.scopes);
        w.key("jobs_queued");
        w.number(self.pool.jobs_queued);
        w.key("jobs_dequeued");
        w.number(self.pool.jobs_dequeued);
        w.key("queue_depth_max");
        w.number(self.pool.queue_depth_max);
        w.key("tasks_completed");
        w.number(self.pool.tasks_completed);
        w.key("task_wait_ns");
        w.number(self.pool.task_wait_ns);
        w.key("task_run_ns");
        w.number(self.pool.task_run_ns);
        w.key("workers");
        w.number(self.pool.workers);
        w.key("worker_busy_ns");
        w.begin_array();
        for b in &self.pool_workers {
            w.number(*b);
        }
        w.end_array();
        w.end_object();

        w.key("sampler");
        w.begin_object();
        w.key("samples");
        w.number(self.sampler.samples);
        w.key("scrapes");
        w.number(self.sampler.scrapes);
        w.key("dump_writes");
        w.number(self.sampler.dump_writes);
        w.end_object();

        w.key("workspace");
        w.begin_object();
        w.key("checkouts");
        w.number(self.workspace.checkouts);
        w.key("hits");
        w.number(self.workspace.hits);
        w.key("misses");
        w.number(self.workspace.misses);
        w.key("bytes_reused");
        w.number(self.workspace.bytes_reused);
        w.end_object();

        w.key("direction");
        w.begin_object();
        w.key("push_picks");
        w.number(self.direction.push_picks);
        w.key("pull_picks");
        w.number(self.direction.pull_picks);
        w.key("transpose_builds");
        w.number(self.direction.transpose_builds);
        w.key("transpose_hits");
        w.number(self.direction.transpose_hits);
        w.end_object();

        w.key("dispatch");
        w.begin_object();
        w.key("static_hits");
        w.number(self.dispatch.static_hits);
        w.key("dyn_fallbacks");
        w.number(self.dispatch.dyn_fallbacks);
        w.end_object();

        w.key("format");
        w.begin_object();
        w.key("bitmap_picks");
        w.number(self.format.bitmap_picks);
        w.key("svec_picks");
        w.number(self.format.svec_picks);
        w.key("conversions");
        w.number(self.format.conversions);
        w.end_object();

        w.key("mem");
        w.begin_object();
        w.key("container_live_bytes");
        w.number(self.mem.container_live);
        w.key("container_high_bytes");
        w.number(self.mem.container_high);
        w.key("workspace_live_bytes");
        w.number(self.mem.workspace_live);
        w.key("workspace_high_bytes");
        w.number(self.mem.workspace_high);
        w.end_object();

        w.key("contexts");
        w.begin_array();
        for c in &self.contexts {
            w.begin_object();
            w.key("id");
            w.number(c.id);
            w.key("parent");
            w.number(c.parent);
            w.key("name");
            match &c.name {
                Some(n) => w.string(n),
                None => w.null(),
            }
            w.key("own");
            write_totals(&mut w, &c.own);
            w.key("rolled");
            write_totals(&mut w, &c.rolled);
            w.end_object();
        }
        w.end_array();

        // Reason-coded decision aggregates (`obs::events`): lifetime
        // counts per choice point, the summary `grbexplain` cross-checks
        // against the full GRB_EXPLAIN export.
        w.key("decisions");
        w.begin_object();
        for (r, c) in &self.decisions {
            w.key(r.code());
            w.number(*c);
        }
        w.end_object();
        w.key("decisions_total");
        w.number(self.decisions_total);

        w.key("events_total");
        w.number(self.events_total);
        if include_events {
            w.key("events");
            w.begin_array();
            for ev in &self.events {
                w.begin_object();
                w.key("name");
                w.string(ev.name);
                w.key("ctx");
                w.number(ev.ctx);
                w.key("thread");
                match span::thread_name(ev.thread) {
                    Some(n) => w.string(&n),
                    None => w.number(ev.thread as u64),
                }
                w.key("start_us");
                w.number(ev.start_us);
                w.key("dur_ns");
                w.number(ev.dur_ns);
                w.end_object();
            }
            w.end_array();
        }
        w.end_object();
        w.finish()
    }

    /// Serializes the snapshot including the event log.
    pub fn to_json(&self) -> String {
        self.to_json_with(true)
    }
}

fn write_totals(w: &mut JsonWriter, t: &crate::ctxreg::CtxTotals) {
    w.begin_object();
    w.key("spans");
    w.number(t.spans);
    w.key("nanos");
    w.number(t.nanos);
    w.key("flops");
    w.number(t.flops);
    w.key("mem_live_bytes");
    w.number(t.mem_live);
    w.key("mem_high_bytes");
    w.number(t.mem_high);
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Kernel;

    #[test]
    fn snapshot_serializes() {
        let snap = snapshot();
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"spgemm\""));
        assert!(json.contains("\"pending\""));
        assert!(json.contains("\"dag\""));
        assert!(json.contains("\"fused_chains\""));
        assert!(json.contains("\"pool\""));
        assert!(json.contains("\"queue_depth_max\""));
        assert!(json.contains("\"task_wait_ns\""));
        assert!(json.contains("\"sampler\""));
        assert!(json.contains("\"dump_writes\""));
        assert!(json.contains("\"workspace\""));
        assert!(json.contains("\"direction\""));
        assert!(json.contains("\"dispatch\""));
        assert!(json.contains("\"static_hits\""));
        assert!(json.contains("\"format\""));
        assert!(json.contains("\"bitmap_picks\""));
        assert!(json.contains("\"mem\""));
        assert!(json.contains("\"container_live_bytes\""));
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"contexts\""));
        assert!(json.contains("\"decisions\""));
        assert!(json.contains("\"direction-pull\""));
        assert!(json.contains("\"fuse-flush\""));
        assert!(json.contains("\"decisions_total\""));
        let brief = snap.to_json_with(false);
        assert!(!brief.contains("\"events\":["));
        assert!(brief.contains("\"decisions\""));
    }

    #[test]
    fn kernel_lookup() {
        let snap = snapshot();
        assert_eq!(snap.kernel(Kernel::Wait).kernel, Kernel::Wait);
    }
}
