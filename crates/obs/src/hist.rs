//! Lock-free log₂-bucketed latency histograms, one per kernel family.
//!
//! Every RAII kernel span funnels its measured duration through
//! [`record`] (via `counters::record_kernel`), incrementing a single
//! relaxed atomic bucket — so the enabled-path cost is one `fetch_add`
//! beyond the counters, and the disabled path (spans hold no timestamp)
//! never reaches this module at all.
//!
//! Buckets are powers of two of nanoseconds: bucket 0 holds exact-zero
//! durations, bucket `i ≥ 1` holds `[2^(i-1), 2^i)` ns, and the last
//! bucket (index 64) is unbounded above. Percentiles interpolate linearly
//! inside the winning bucket and clamp to the true observed maximum, so
//! `p100 == max` exactly and mid-range estimates are within one bucket
//! width of the truth — plenty for p50/p90/p99 tail reporting.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::counters::{Kernel, KERNEL_COUNT, KERNEL_LIST};

/// Number of histogram buckets: one zero bucket plus one per bit of a
/// `u64` duration.
pub const HIST_BUCKETS: usize = 65;

/// The bucket a duration lands in.
#[inline]
pub fn bucket_index(dur_ns: u64) -> usize {
    if dur_ns == 0 {
        0
    } else {
        64 - dur_ns.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`'s duration range.
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Exclusive upper bound of bucket `i`'s range (`u64::MAX` for the last
/// bucket, which is closed above by saturation).
pub fn bucket_ceil(i: usize) -> u64 {
    match i {
        0 => 1,
        64 => u64::MAX,
        _ => 1u64 << i,
    }
}

struct AtomicHist {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    // Seeds the static table only; each slot gets fresh atomics.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_BUCKET: AtomicU64 = AtomicU64::new(0);
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicHist = AtomicHist {
        buckets: [Self::ZERO_BUCKET; HIST_BUCKETS],
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        max: AtomicU64::new(0),
    };

    fn record(&self, dur_ns: u64) {
        self.buckets[bucket_index(dur_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(dur_ns, Ordering::Relaxed);
        self.max.fetch_max(dur_ns, Ordering::Relaxed);
    }

    fn reset(&self) {
        // grbsa: protocol(counter-reset) — test-isolation zeroing; reset
        // points are single-threaded harness boundaries.
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn totals(&self) -> HistTotals {
        let mut t = HistTotals::new();
        for (i, b) in self.buckets.iter().enumerate() {
            t.buckets[i] = b.load(Ordering::Relaxed);
        }
        t.count = self.count.load(Ordering::Relaxed);
        t.sum = self.sum.load(Ordering::Relaxed);
        t.max = self.max.load(Ordering::Relaxed);
        t
    }
}

static HISTS: [AtomicHist; KERNEL_COUNT] = [AtomicHist::ZERO; KERNEL_COUNT];

/// Adds one latency sample to kernel `k`'s histogram. Callers must guard
/// on [`crate::enabled`] (span drops already do).
pub fn record(k: Kernel, dur_ns: u64) {
    HISTS[k as usize].record(dur_ns);
}

pub(crate) fn reset() {
    for h in &HISTS {
        h.reset();
    }
}

/// A point-in-time, mergeable copy of one histogram. Also usable as a
/// plain single-threaded accumulator through [`HistTotals::add_sample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistTotals {
    /// Sample count per log₂ bucket (see [`bucket_floor`]/[`bucket_ceil`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of sampled durations (saturating in pathological overflow).
    pub sum: u64,
    /// Largest sampled duration.
    pub max: u64,
}

impl Default for HistTotals {
    fn default() -> Self {
        Self::new()
    }
}

impl HistTotals {
    pub fn new() -> Self {
        HistTotals {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Adds one sample (local accumulation; the global table uses atomics).
    pub fn add_sample(&mut self, dur_ns: u64) {
        self.buckets[bucket_index(dur_ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(dur_ns);
        self.max = self.max.max(dur_ns);
    }

    /// Folds another histogram into this one. Merging is commutative and
    /// associative (plain sums and a max), so per-thread histograms merge
    /// to the same result in any order.
    pub fn merge(&mut self, other: &HistTotals) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean sampled duration in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-th percentile (0–100) in nanoseconds, linearly interpolated
    /// inside the winning log₂ bucket and clamped to the observed max.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // 1-based rank of the sample we want, at least the first.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                if i == 0 {
                    // The zero bucket holds exact-zero durations only.
                    return 0;
                }
                let lo = bucket_floor(i);
                let hi = bucket_ceil(i).min(self.max.max(lo));
                let within = (rank - cum) as f64 / n as f64;
                // Saturating: the top bucket's width rounds up to 2^63 as
                // an f64, which would overflow `lo + …` before the clamp.
                let est = lo.saturating_add(((hi - lo) as f64 * within) as u64);
                return est.min(self.max);
            }
            cum += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// One kernel family's latency histogram, as captured by a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelHist {
    pub kernel: Kernel,
    pub hist: HistTotals,
}

/// Point-in-time copy of every kernel's histogram, in [`KERNEL_LIST`]
/// order (matching `Snapshot::kernels`).
pub fn kernel_hists() -> Vec<KernelHist> {
    KERNEL_LIST
        .iter()
        .map(|&k| KernelHist {
            kernel: k,
            hist: HISTS[k as usize].totals(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        // Every bucket's floor maps back into that bucket.
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn extreme_durations_round_trip() {
        let mut h = HistTotals::new();
        h.add_sample(0);
        h.add_sample(1);
        h.add_sample(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert_eq!(h.percentile(0.0), 0, "rank-1 sample is the zero");
    }

    #[test]
    fn percentile_interpolation() {
        // 100 samples spread evenly through bucket [64, 128): the median
        // estimate must land mid-bucket, and p100 must hit the max.
        let mut h = HistTotals::new();
        for _ in 0..100 {
            h.add_sample(100);
        }
        let p50 = h.p50();
        assert!(
            (64..128).contains(&p50),
            "p50 {p50} escaped the only populated bucket"
        );
        assert_eq!(h.percentile(100.0), 100);
        // Two-bucket split: 50 fast samples (bucket [1,2)) and 50 slow
        // ones (bucket [1024, 2048)); p25 must be fast, p75 slow.
        let mut h2 = HistTotals::new();
        for _ in 0..50 {
            h2.add_sample(1);
            h2.add_sample(1500);
        }
        assert!(h2.percentile(25.0) < 2);
        assert!(h2.percentile(75.0) >= 1024);
        assert_eq!(h2.max, 1500);
        assert!(h2.p99() <= 1500);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = HistTotals::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.percentile(100.0), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let _g = crate::test_guard();
        reset();
        let threads = 4;
        let per_thread = 1000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..per_thread {
                        record(Kernel::Reduce, (t as u64) * 1000 + i);
                    }
                });
            }
        });
        let h = kernel_hists()
            .into_iter()
            .find(|kh| kh.kernel == Kernel::Reduce)
            .unwrap()
            .hist;
        assert_eq!(h.count, threads as u64 * per_thread);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        assert_eq!(h.max, 3999);
        reset();
    }

    #[test]
    fn merge_is_order_independent() {
        // Three per-thread histograms with distinct shapes merge to the
        // same totals and percentiles in any order.
        let mk = |seed: u64| {
            let mut h = HistTotals::new();
            let mut x = seed;
            for _ in 0..500 {
                // Hand-rolled LCG: deterministic, no external RNG.
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                h.add_sample(x >> 40);
            }
            h
        };
        let parts = [mk(1), mk(2), mk(3)];
        let mut fwd = HistTotals::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = HistTotals::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.count, 1500);
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(fwd.percentile(p), rev.percentile(p));
        }
    }
}
