//! RAII spans, the bounded event ring, and burble narration.
//!
//! A [`Span`] measures one region of work (usually one kernel invocation).
//! On drop — when telemetry is enabled — it records the elapsed wall time
//! into the kernel counter table, attributes it to the active context, and
//! appends an [`Event`] to a fixed-capacity ring buffer (oldest events are
//! overwritten; capacity via `GRB_OBS_EVENTS`, default 4096). With burble
//! on, each span additionally narrates one human-readable line to stderr,
//! in the spirit of SuiteSparse's `GxB_BURBLE`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::counters::{self, Kernel};
use crate::ctxreg;

/// Default event-ring capacity (events, not bytes).
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

// --- thread identity ------------------------------------------------------

static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);
static THREAD_NAMES: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());

thread_local! {
    static THREAD_TAG: u32 = {
        let tag = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{tag}"));
        let mut names = THREAD_NAMES.lock().unwrap_or_else(|e| e.into_inner());
        names.push((tag, name));
        tag
    };
}

pub(crate) fn thread_tag() -> u32 {
    THREAD_TAG.with(|t| *t)
}

/// Resolves a thread tag recorded in an [`Event`] back to its name.
pub fn thread_name(tag: u32) -> Option<String> {
    let names = THREAD_NAMES.lock().unwrap_or_else(|e| e.into_inner());
    names
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, n)| n.clone())
}

// --- event ring -----------------------------------------------------------

/// One completed span, as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span label (kernel name for kernel spans).
    pub name: &'static str,
    /// Kernel family, when the span wrapped a counted kernel.
    pub kernel: Option<Kernel>,
    /// Id of the context the work ran under (`0` = unattributed).
    pub ctx: u64,
    /// Tag resolvable through [`thread_name`].
    pub thread: u32,
    /// Start time in microseconds since the first telemetry event.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    buf: Vec<Event>,
    capacity: usize,
    /// Next write slot; total events ever seen is `written`.
    written: u64,
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);

fn with_ring<R>(f: impl FnOnce(&mut Ring) -> R) -> R {
    let mut guard = RING.lock().unwrap_or_else(|e| e.into_inner());
    let ring = guard.get_or_insert_with(|| {
        let capacity = std::env::var("GRB_OBS_EVENTS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_EVENT_CAPACITY);
        Ring {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            written: 0,
        }
    });
    f(ring)
}

fn push_event(ev: Event) {
    with_ring(|ring| {
        let slot = (ring.written % ring.capacity as u64) as usize;
        if slot < ring.buf.len() {
            ring.buf[slot] = ev;
        } else {
            ring.buf.push(ev);
        }
        ring.written += 1;
    });
}

/// Copies the ring's events in chronological order, plus the total number
/// of events ever recorded (events beyond the capacity were overwritten).
pub fn events() -> (Vec<Event>, u64) {
    with_ring(|ring| {
        let mut out = Vec::with_capacity(ring.buf.len());
        let start = ring.written.saturating_sub(ring.buf.len() as u64);
        for i in start..ring.written {
            out.push(ring.buf[(i % ring.capacity as u64) as usize].clone());
        }
        (out, ring.written)
    })
}

pub(crate) fn reset_events() {
    with_ring(|ring| {
        ring.buf.clear();
        ring.written = 0;
    });
}

// --- spans ----------------------------------------------------------------

/// An RAII measurement of one region of work. Construct through [`span`],
/// [`span_ctx`], or [`kernel_span`]; the measurement is recorded when the
/// guard drops. When telemetry is disabled the guard holds no timestamp
/// and its drop does nothing.
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
    kernel: Option<Kernel>,
    ctx: u64,
    flops: u64,
    nnz_in: u64,
    nnz_out: u64,
    bytes: u64,
}

impl Span {
    fn new(name: &'static str, kernel: Option<Kernel>, ctx: u64) -> Span {
        Span {
            start: crate::enabled().then(Instant::now),
            name,
            kernel,
            ctx,
            flops: 0,
            nnz_in: 0,
            nnz_out: 0,
            bytes: 0,
        }
    }

    /// Whether this span is live (telemetry was enabled at construction).
    /// Lets callers skip computing work estimates for dead spans.
    pub fn active(&self) -> bool {
        self.start.is_some()
    }

    /// Attaches work figures reported with the span at drop: floating (or
    /// semiring) operations, input/output stored elements, bytes moved.
    pub fn io(&mut self, flops: u64, nnz_in: u64, nnz_out: u64, bytes: u64) {
        self.flops += flops;
        self.nnz_in += nnz_in;
        self.nnz_out += nnz_out;
        self.bytes += bytes;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(t0) = self.start else { return };
        let start_ns = t0.duration_since(epoch()).as_nanos() as u64;
        let start_us = start_ns / 1_000;
        let dur_ns = t0.elapsed().as_nanos() as u64;
        if let Some(k) = self.kernel {
            counters::record_kernel(k, dur_ns, self.flops, self.nnz_in, self.nnz_out, self.bytes);
        }
        ctxreg::add_span(self.ctx, dur_ns, self.flops);
        if crate::timeline::timeline_requested() {
            crate::timeline::record(self.name, start_ns, start_ns + dur_ns);
        }
        push_event(Event {
            name: self.name,
            kernel: self.kernel,
            ctx: self.ctx,
            thread: thread_tag(),
            start_us,
            dur_ns,
        });
        if crate::burble() {
            let ctx_label = if self.ctx == 0 {
                String::new()
            } else {
                match ctxreg::context_name(self.ctx) {
                    Some(name) => format!(" ctx={}({name})", self.ctx),
                    None => format!(" ctx={}", self.ctx),
                }
            };
            let work = if self.flops | self.nnz_in | self.nnz_out != 0 {
                format!(
                    " flops={} nnz_in={} nnz_out={}",
                    self.flops, self.nnz_in, self.nnz_out
                )
            } else {
                String::new()
            };
            eprintln!(
                "[grb-obs] {} {}{ctx_label}{work}",
                self.name,
                fmt_ns(dur_ns)
            );
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Starts an unattributed span.
pub fn span(name: &'static str) -> Span {
    Span::new(name, None, 0)
}

/// Starts a span attributed to context `ctx_id`.
pub fn span_ctx(name: &'static str, ctx_id: u64) -> Span {
    Span::new(name, None, ctx_id)
}

/// Starts a span that records into kernel `k`'s counters on drop.
pub fn kernel_span(k: Kernel, ctx_id: u64) -> Span {
    Span::new(k.name(), Some(k), ctx_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        reset_events();
        {
            let mut s = kernel_span(Kernel::Transpose, 0);
            assert!(!s.active());
            s.io(10, 10, 10, 10);
        }
        assert_eq!(events().1, 0);
    }

    #[test]
    fn enabled_span_lands_in_ring_and_counters() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        reset_events();
        {
            let mut s = kernel_span(Kernel::Convert, 0);
            assert!(s.active());
            s.io(3, 2, 1, 8);
        }
        let (evs, total) = events();
        assert_eq!(total, 1);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kernel, Some(Kernel::Convert));
        assert_eq!(evs[0].name, "convert");
        assert!(thread_name(evs[0].thread).is_some());
        crate::set_enabled(false);
        reset_events();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(5), "5ns");
        assert!(fmt_ns(1_500).contains("us"));
        assert!(fmt_ns(2_000_000).contains("ms"));
        assert!(fmt_ns(3_000_000_000).ends_with('s'));
    }
}
