//! Global atomic counters: per-kernel work accounting, pending-queue /
//! fusion statistics, and thread-pool activity.
//!
//! Everything here is a plain `AtomicU64` updated with relaxed ordering —
//! the counters are monotone statistics, not synchronization points. Sites
//! must guard updates on [`crate::enabled`] so the disabled build does no
//! atomic traffic at all.

use std::sync::atomic::{AtomicU64, Ordering};

/// The instrumented kernel families. The set mirrors the hot paths of
/// `graphblas-sparse` (storage-level kernels) plus the container-level
/// operations of `graphblas-core` whose cost the paper's §III latitude
/// makes otherwise invisible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Kernel {
    /// Sparse matrix × sparse matrix (`mxm`).
    SpGemm = 0,
    /// Sparse matrix × vector (`mxv`, push direction).
    SpMv = 1,
    /// Vector × sparse matrix (`vxm`, pull direction).
    VxM = 2,
    /// Element-wise union (`eWiseAdd`).
    EwiseAdd = 3,
    /// Element-wise intersection (`eWiseMult`).
    EwiseMult = 4,
    /// Explicit or descriptor-driven transpose.
    Transpose = 5,
    /// `apply` (unary / bound-scalar / index-unary).
    Apply = 6,
    /// `select` (index-unary filter).
    Select = 7,
    /// `reduce` to vector, scalar, or value.
    Reduce = 8,
    /// Deferred-sequence drain: one fused traversal of a map run.
    MapFuse = 9,
    /// COO/CSC/dense → CSR canonicalization and row sorting.
    Convert = 10,
    /// `wait(Complete|Materialize)`.
    Wait = 11,
    /// Kronecker product (`GrB_kronecker`).
    Kron = 12,
}

/// Number of [`Kernel`] variants (size of the static counter table).
pub const KERNEL_COUNT: usize = 13;

pub(crate) const KERNEL_LIST: [Kernel; KERNEL_COUNT] = [
    Kernel::SpGemm,
    Kernel::SpMv,
    Kernel::VxM,
    Kernel::EwiseAdd,
    Kernel::EwiseMult,
    Kernel::Transpose,
    Kernel::Apply,
    Kernel::Select,
    Kernel::Reduce,
    Kernel::MapFuse,
    Kernel::Convert,
    Kernel::Wait,
    Kernel::Kron,
];

impl Kernel {
    /// Stable lower-case name used in burble output and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::SpGemm => "spgemm",
            Kernel::SpMv => "spmv",
            Kernel::VxM => "vxm",
            Kernel::EwiseAdd => "ewise_add",
            Kernel::EwiseMult => "ewise_mult",
            Kernel::Transpose => "transpose",
            Kernel::Apply => "apply",
            Kernel::Select => "select",
            Kernel::Reduce => "reduce",
            Kernel::MapFuse => "map_fuse",
            Kernel::Convert => "convert",
            Kernel::Wait => "wait",
            Kernel::Kron => "kron",
        }
    }
}

/// One kernel's accumulated work. All fields are relaxed atomics.
pub struct KernelCounters {
    pub calls: AtomicU64,
    pub nanos: AtomicU64,
    pub flops: AtomicU64,
    pub nnz_in: AtomicU64,
    pub nnz_out: AtomicU64,
    pub bytes_moved: AtomicU64,
}

impl KernelCounters {
    // The const is only ever used to seed the static table below; each
    // array slot gets its own atomics (no shared-state surprise).
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: KernelCounters = KernelCounters {
        calls: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
        flops: AtomicU64::new(0),
        nnz_in: AtomicU64::new(0),
        nnz_out: AtomicU64::new(0),
        bytes_moved: AtomicU64::new(0),
    };

    fn reset(&self) {
        // grbsa: protocol(counter-reset) — test-isolation zeroing; reset
        // points are single-threaded harness boundaries.
        self.calls.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.nnz_in.store(0, Ordering::Relaxed);
        self.nnz_out.store(0, Ordering::Relaxed);
        self.bytes_moved.store(0, Ordering::Relaxed);
    }
}

static KERNELS: [KernelCounters; KERNEL_COUNT] = [KernelCounters::ZERO; KERNEL_COUNT];

/// The live counter block for `k` (for instrumentation sites that add to
/// individual fields between span start and end).
pub fn kernel(k: Kernel) -> &'static KernelCounters {
    &KERNELS[k as usize]
}

/// Adds one finished invocation of `k` with its measured wall time and
/// work figures. The single entry point span drops funnel through; the
/// wall time also lands in `k`'s latency histogram.
pub fn record_kernel(k: Kernel, nanos: u64, flops: u64, nnz_in: u64, nnz_out: u64, bytes: u64) {
    crate::hist::record(k, nanos);
    let c = kernel(k);
    c.calls.fetch_add(1, Ordering::Relaxed);
    c.nanos.fetch_add(nanos, Ordering::Relaxed);
    c.flops.fetch_add(flops, Ordering::Relaxed);
    c.nnz_in.fetch_add(nnz_in, Ordering::Relaxed);
    c.nnz_out.fetch_add(nnz_out, Ordering::Relaxed);
    c.bytes_moved.fetch_add(bytes, Ordering::Relaxed);
}

/// A point-in-time copy of one kernel's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTotals {
    pub kernel: Kernel,
    pub calls: u64,
    pub nanos: u64,
    pub flops: u64,
    pub nnz_in: u64,
    pub nnz_out: u64,
    pub bytes_moved: u64,
}

pub(crate) fn kernel_totals() -> Vec<KernelTotals> {
    KERNEL_LIST
        .iter()
        .map(|&k| {
            let c = kernel(k);
            KernelTotals {
                kernel: k,
                calls: c.calls.load(Ordering::Relaxed),
                nanos: c.nanos.load(Ordering::Relaxed),
                flops: c.flops.load(Ordering::Relaxed),
                nnz_in: c.nnz_in.load(Ordering::Relaxed),
                nnz_out: c.nnz_out.load(Ordering::Relaxed),
                bytes_moved: c.bytes_moved.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Pending-queue statistics for the §III deferred-execution machinery.
pub struct PendingCounters {
    /// Fusible `Stage::Map` stages enqueued.
    pub maps_enqueued: AtomicU64,
    /// `Stage::Opaque` stages enqueued.
    pub opaques_enqueued: AtomicU64,
    /// Map stages that were absorbed into a preceding map's traversal: a
    /// run of `n` consecutive maps drains as one pass and scores `n - 1`.
    pub fusion_hits: AtomicU64,
    /// Fused map traversals executed (one per flushed map run).
    pub map_traversals: AtomicU64,
    /// Opaque stages executed at drain time.
    pub opaque_drains: AtomicU64,
    /// Queue-drain events that found work to do.
    pub drains: AtomicU64,
    /// High-water mark of any container's pending-queue depth.
    pub max_depth: AtomicU64,
    /// Execution errors raised (constructed) anywhere.
    pub errors_raised: AtomicU64,
    /// Execution errors that surfaced from a drained deferred sequence —
    /// the §V "reported later" case.
    pub errors_deferred: AtomicU64,
}

static PENDING: PendingCounters = PendingCounters {
    maps_enqueued: AtomicU64::new(0),
    opaques_enqueued: AtomicU64::new(0),
    fusion_hits: AtomicU64::new(0),
    map_traversals: AtomicU64::new(0),
    opaque_drains: AtomicU64::new(0),
    drains: AtomicU64::new(0),
    max_depth: AtomicU64::new(0),
    errors_raised: AtomicU64::new(0),
    errors_deferred: AtomicU64::new(0),
};

/// The global pending-queue counter block.
pub fn pending() -> &'static PendingCounters {
    &PENDING
}

/// Records a new pending-queue depth, keeping the high-water mark.
pub fn note_pending_depth(depth: usize) {
    PENDING.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
}

/// Point-in-time copy of the pending-queue statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PendingTotals {
    pub maps_enqueued: u64,
    pub opaques_enqueued: u64,
    pub fusion_hits: u64,
    pub map_traversals: u64,
    pub opaque_drains: u64,
    pub drains: u64,
    pub max_depth: u64,
    pub errors_raised: u64,
    pub errors_deferred: u64,
}

pub(crate) fn pending_totals() -> PendingTotals {
    PendingTotals {
        maps_enqueued: PENDING.maps_enqueued.load(Ordering::Relaxed),
        opaques_enqueued: PENDING.opaques_enqueued.load(Ordering::Relaxed),
        fusion_hits: PENDING.fusion_hits.load(Ordering::Relaxed),
        map_traversals: PENDING.map_traversals.load(Ordering::Relaxed),
        opaque_drains: PENDING.opaque_drains.load(Ordering::Relaxed),
        drains: PENDING.drains.load(Ordering::Relaxed),
        max_depth: PENDING.max_depth.load(Ordering::Relaxed),
        errors_raised: PENDING.errors_raised.load(Ordering::Relaxed),
        errors_deferred: PENDING.errors_deferred.load(Ordering::Relaxed),
    }
}

/// Op-DAG statistics for the §III nonblocking fused-execution engine:
/// how many lazy op nodes were enqueued, how many neighbouring map stages
/// the node kernels absorbed (input side and output side), and what
/// forced drains.
pub struct DagCounters {
    /// Lazy `Stage::Node` op nodes enqueued.
    pub nodes_enqueued: AtomicU64,
    /// Input-side map stages folded into a node's operand lookup
    /// (the intermediate traversal they would have cost never ran).
    pub pre_fused: AtomicU64,
    /// Output-side (trailing) map stages folded into a node's kernel
    /// write or result pass.
    pub post_fused: AtomicU64,
    /// Node drains that fused at least one neighbouring stage.
    pub fused_chains: AtomicU64,
    /// Drains handed to the worker pool by the depth heuristic.
    pub async_drains: AtomicU64,
    /// Forced drains (read/wait/self-input barriers) on DAG queues.
    pub forces: AtomicU64,
}

static DAG: DagCounters = DagCounters {
    nodes_enqueued: AtomicU64::new(0),
    pre_fused: AtomicU64::new(0),
    post_fused: AtomicU64::new(0),
    fused_chains: AtomicU64::new(0),
    async_drains: AtomicU64::new(0),
    forces: AtomicU64::new(0),
};

/// The global op-DAG counter block.
pub fn dag() -> &'static DagCounters {
    &DAG
}

/// Records one op-DAG node drain that absorbed `pre` input-side and
/// `post` output-side map stages.
pub fn record_dag_fusion(pre: u64, post: u64) {
    DAG.pre_fused.fetch_add(pre, Ordering::Relaxed);
    DAG.post_fused.fetch_add(post, Ordering::Relaxed);
    if pre + post > 0 {
        DAG.fused_chains.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the op-DAG statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DagTotals {
    pub nodes_enqueued: u64,
    pub pre_fused: u64,
    pub post_fused: u64,
    pub fused_chains: u64,
    pub async_drains: u64,
    pub forces: u64,
}

pub fn dag_totals() -> DagTotals {
    DagTotals {
        nodes_enqueued: DAG.nodes_enqueued.load(Ordering::Relaxed),
        pre_fused: DAG.pre_fused.load(Ordering::Relaxed),
        post_fused: DAG.post_fused.load(Ordering::Relaxed),
        fused_chains: DAG.fused_chains.load(Ordering::Relaxed),
        async_drains: DAG.async_drains.load(Ordering::Relaxed),
        forces: DAG.forces.load(Ordering::Relaxed),
    }
}

/// Kernel-workspace reuse statistics (`exec::workspace`): how often hot
/// kernels checked scratch buffers out of the per-thread cache instead of
/// allocating, and how many buffer bytes that reuse avoided reallocating.
pub struct WorkspaceCounters {
    /// Scratch checkouts requested by kernels.
    pub checkouts: AtomicU64,
    /// Checkouts served from the per-thread cache (no allocation).
    pub hits: AtomicU64,
    /// Checkouts that had to allocate a fresh workspace.
    pub misses: AtomicU64,
    /// Bytes of already-allocated buffer capacity handed back on hits.
    pub bytes_reused: AtomicU64,
}

static WORKSPACE: WorkspaceCounters = WorkspaceCounters {
    checkouts: AtomicU64::new(0),
    hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
    bytes_reused: AtomicU64::new(0),
};

/// The global workspace counter block.
pub fn workspace() -> &'static WorkspaceCounters {
    &WORKSPACE
}

/// Records one workspace checkout. `bytes_reused` is the capacity of the
/// cached buffers on a hit (0 on a miss).
pub fn record_workspace_checkout(hit: bool, bytes_reused: u64) {
    WORKSPACE.checkouts.fetch_add(1, Ordering::Relaxed);
    if hit {
        WORKSPACE.hits.fetch_add(1, Ordering::Relaxed);
        WORKSPACE.bytes_reused.fetch_add(bytes_reused, Ordering::Relaxed);
    } else {
        WORKSPACE.misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the workspace statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceTotals {
    pub checkouts: u64,
    pub hits: u64,
    pub misses: u64,
    pub bytes_reused: u64,
}

pub(crate) fn workspace_totals() -> WorkspaceTotals {
    WorkspaceTotals {
        checkouts: WORKSPACE.checkouts.load(Ordering::Relaxed),
        hits: WORKSPACE.hits.load(Ordering::Relaxed),
        misses: WORKSPACE.misses.load(Ordering::Relaxed),
        bytes_reused: WORKSPACE.bytes_reused.load(Ordering::Relaxed),
    }
}

/// Direction-optimizing `mxv`/`vxm` dispatch statistics: which kernel the
/// Beamer-style frontier-density heuristic picked, and how the memoized
/// transpose cache behaved while serving the pull direction.
pub struct DirectionCounters {
    /// Dispatches resolved to the push (scatter) kernel.
    pub push_picks: AtomicU64,
    /// Dispatches resolved to the pull (dot-product) kernel.
    pub pull_picks: AtomicU64,
    /// Transposes computed and installed in a matrix's memo cache.
    pub transpose_builds: AtomicU64,
    /// Transpose requests served from the memo cache.
    pub transpose_hits: AtomicU64,
}

static DIRECTION: DirectionCounters = DirectionCounters {
    push_picks: AtomicU64::new(0),
    pull_picks: AtomicU64::new(0),
    transpose_builds: AtomicU64::new(0),
    transpose_hits: AtomicU64::new(0),
};

/// The global direction-dispatch counter block.
pub fn direction() -> &'static DirectionCounters {
    &DIRECTION
}

/// Records one direction decision for a matrix-vector product.
pub fn record_direction_pick(pull: bool) {
    if pull {
        DIRECTION.pull_picks.fetch_add(1, Ordering::Relaxed);
    } else {
        DIRECTION.push_picks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records one memoized-transpose request (`hit` = served from cache).
pub fn record_transpose_cache(hit: bool) {
    if hit {
        DIRECTION.transpose_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        DIRECTION.transpose_builds.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the direction-dispatch statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirectionTotals {
    pub push_picks: u64,
    pub pull_picks: u64,
    pub transpose_builds: u64,
    pub transpose_hits: u64,
}

pub(crate) fn direction_totals() -> DirectionTotals {
    DirectionTotals {
        push_picks: DIRECTION.push_picks.load(Ordering::Relaxed),
        pull_picks: DIRECTION.pull_picks.load(Ordering::Relaxed),
        transpose_builds: DIRECTION.transpose_builds.load(Ordering::Relaxed),
        transpose_hits: DIRECTION.transpose_hits.load(Ordering::Relaxed),
    }
}

/// Kernel-registry dispatch statistics: how often an operation ran a
/// pre-monomorphized static kernel from `core::ops::registry` (paper §II
/// static dispatch) versus falling back to the universal `dyn Fn` path
/// (user-defined operators, unregistered semiring/type combinations, or
/// `GRB_DISPATCH=dyn`).
pub struct DispatchCounters {
    /// Dispatches served by a registered monomorphized kernel.
    pub static_hits: AtomicU64,
    /// Dispatches that fell back to the erased-closure path.
    pub dyn_fallbacks: AtomicU64,
}

static DISPATCH: DispatchCounters = DispatchCounters {
    static_hits: AtomicU64::new(0),
    dyn_fallbacks: AtomicU64::new(0),
};

/// The global kernel-registry dispatch counter block.
pub fn dispatch() -> &'static DispatchCounters {
    &DISPATCH
}

/// Records one kernel dispatch decision (`is_static` = registry hit).
pub fn record_dispatch_pick(is_static: bool) {
    if is_static {
        DISPATCH.static_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        DISPATCH.dyn_fallbacks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the dispatch statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchTotals {
    pub static_hits: u64,
    pub dyn_fallbacks: u64,
}

pub(crate) fn dispatch_totals() -> DispatchTotals {
    DispatchTotals {
        static_hits: DISPATCH.static_hits.load(Ordering::Relaxed),
        dyn_fallbacks: DISPATCH.dyn_fallbacks.load(Ordering::Relaxed),
    }
}

/// Vector storage-format statistics (Table III): how often the mxv/vxm
/// store path kept the sparse (index/value) representation versus the
/// bitmap (presence bits + dense slots) representation for a near-dense
/// result, and how many bitmap→sparse conversions later kernels forced.
pub struct FormatCounters {
    /// Results stored in bitmap format (density qualified).
    pub bitmap_picks: AtomicU64,
    /// Results kept in sparse index/value format.
    pub svec_picks: AtomicU64,
    /// Bitmap→sparse conversions forced by a downstream consumer.
    pub conversions: AtomicU64,
}

static FORMAT: FormatCounters = FormatCounters {
    bitmap_picks: AtomicU64::new(0),
    svec_picks: AtomicU64::new(0),
    conversions: AtomicU64::new(0),
};

/// The global vector-format counter block.
pub fn format() -> &'static FormatCounters {
    &FORMAT
}

/// Records one output-format decision (`bitmap` = bitmap store chosen).
pub fn record_format_pick(bitmap: bool) {
    if bitmap {
        FORMAT.bitmap_picks.fetch_add(1, Ordering::Relaxed);
    } else {
        FORMAT.svec_picks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records one bitmap→sparse conversion forced by a consumer.
pub fn record_format_conversion() {
    FORMAT.conversions.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time copy of the format statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FormatTotals {
    pub bitmap_picks: u64,
    pub svec_picks: u64,
    pub conversions: u64,
}

pub(crate) fn format_totals() -> FormatTotals {
    FormatTotals {
        bitmap_picks: FORMAT.bitmap_picks.load(Ordering::Relaxed),
        svec_picks: FORMAT.svec_picks.load(Ordering::Relaxed),
        conversions: FORMAT.conversions.load(Ordering::Relaxed),
    }
}

/// Thread-pool activity counters. The pool has no work stealing; the
/// park/wake pair is the closest observable analogue — a park is a worker
/// blocking on an empty queue, a wake is a job arriving for a parked
/// worker. The scheduler-facing fields (queue depth, wait-vs-run split,
/// per-worker busy time) are the signals the nonblocking drain engine and
/// admission control tune against; `exec::pool` feeds them through
/// [`record_pool_enqueue`] / [`record_pool_dequeue`] / [`record_pool_task`].
pub struct PoolCounters {
    /// Tasks submitted to pool workers via a scope.
    pub tasks_spawned: AtomicU64,
    /// Tasks executed inline because the spawner was itself a pool worker
    /// (nested parallel region).
    pub tasks_inline: AtomicU64,
    /// Times a worker blocked waiting for work.
    pub parks: AtomicU64,
    /// Times a parked worker was woken by a new job.
    pub wakes: AtomicU64,
    /// Scopes opened (`ThreadPool::scope` entries).
    pub scopes: AtomicU64,
    /// Jobs pushed onto the shared queue (monotone; live queue depth is
    /// `jobs_queued - jobs_dequeued`, which avoids a non-monotone gauge).
    pub jobs_queued: AtomicU64,
    /// Jobs taken off the queue by workers.
    pub jobs_dequeued: AtomicU64,
    /// High-water mark of the queue depth observed at push time.
    pub queue_depth_max: AtomicU64,
    /// Offloaded tasks that ran to completion on a worker.
    pub tasks_completed: AtomicU64,
    /// Total nanoseconds tasks spent queued (enqueue → dequeue).
    pub task_wait_ns: AtomicU64,
    /// Total nanoseconds tasks spent executing on a worker.
    pub task_run_ns: AtomicU64,
    /// Highest worker index seen + 1 (the busy-table prefix in use).
    pub workers: AtomicU64,
}

/// Size of the static per-worker busy table. Workers beyond this fold into
/// the last slot (`GRB_POOL_THREADS` on real deployments is far smaller).
pub const MAX_POOL_WORKERS: usize = 64;

// Seeds the static table only; each slot gets fresh atomics.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

/// Per-worker cumulative busy nanoseconds (task execution time attributed
/// to the worker that ran it). Utilization over a window is the busy delta
/// divided by the window length.
static WORKER_BUSY: [AtomicU64; MAX_POOL_WORKERS] = [ZERO_U64; MAX_POOL_WORKERS];

static POOL: PoolCounters = PoolCounters {
    tasks_spawned: AtomicU64::new(0),
    tasks_inline: AtomicU64::new(0),
    parks: AtomicU64::new(0),
    wakes: AtomicU64::new(0),
    scopes: AtomicU64::new(0),
    jobs_queued: AtomicU64::new(0),
    jobs_dequeued: AtomicU64::new(0),
    queue_depth_max: AtomicU64::new(0),
    tasks_completed: AtomicU64::new(0),
    task_wait_ns: AtomicU64::new(0),
    task_run_ns: AtomicU64::new(0),
    workers: AtomicU64::new(0),
};

/// The global thread-pool counter block.
pub fn pool() -> &'static PoolCounters {
    &POOL
}

/// Records one job landing on the pool queue; `depth` is the queue depth
/// right after the push (the pool reads it under its queue lock, so the
/// high-water mark is exact, not sampled).
pub fn record_pool_enqueue(depth: usize) {
    POOL.jobs_queued.fetch_add(1, Ordering::Relaxed);
    POOL.queue_depth_max.fetch_max(depth as u64, Ordering::Relaxed);
}

/// Records one job leaving the pool queue for a worker.
pub fn record_pool_dequeue() {
    POOL.jobs_dequeued.fetch_add(1, Ordering::Relaxed);
}

/// Records one completed offloaded task: which worker ran it, how long it
/// sat queued, and how long it executed. Worker indices at or beyond
/// [`MAX_POOL_WORKERS`] share the last busy slot.
pub fn record_pool_task(worker: usize, wait_ns: u64, run_ns: u64) {
    POOL.tasks_completed.fetch_add(1, Ordering::Relaxed);
    POOL.task_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    POOL.task_run_ns.fetch_add(run_ns, Ordering::Relaxed);
    let slot = worker.min(MAX_POOL_WORKERS - 1);
    WORKER_BUSY[slot].fetch_add(run_ns, Ordering::Relaxed);
    POOL.workers.fetch_max(slot as u64 + 1, Ordering::Relaxed);
}

/// Point-in-time copy of the pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolTotals {
    pub tasks_spawned: u64,
    pub tasks_inline: u64,
    pub parks: u64,
    pub wakes: u64,
    pub scopes: u64,
    pub jobs_queued: u64,
    pub jobs_dequeued: u64,
    pub queue_depth_max: u64,
    pub tasks_completed: u64,
    pub task_wait_ns: u64,
    pub task_run_ns: u64,
    pub workers: u64,
}

impl PoolTotals {
    /// Live queue depth implied by the monotone push/pop counters (clamped
    /// at zero: the two loads are not mutually atomic).
    pub fn queue_depth(&self) -> u64 {
        self.jobs_queued.saturating_sub(self.jobs_dequeued)
    }
}

pub(crate) fn pool_totals() -> PoolTotals {
    PoolTotals {
        tasks_spawned: POOL.tasks_spawned.load(Ordering::Relaxed),
        tasks_inline: POOL.tasks_inline.load(Ordering::Relaxed),
        parks: POOL.parks.load(Ordering::Relaxed),
        wakes: POOL.wakes.load(Ordering::Relaxed),
        scopes: POOL.scopes.load(Ordering::Relaxed),
        jobs_queued: POOL.jobs_queued.load(Ordering::Relaxed),
        jobs_dequeued: POOL.jobs_dequeued.load(Ordering::Relaxed),
        queue_depth_max: POOL.queue_depth_max.load(Ordering::Relaxed),
        tasks_completed: POOL.tasks_completed.load(Ordering::Relaxed),
        task_wait_ns: POOL.task_wait_ns.load(Ordering::Relaxed),
        task_run_ns: POOL.task_run_ns.load(Ordering::Relaxed),
        workers: POOL.workers.load(Ordering::Relaxed),
    }
}

/// Per-worker cumulative busy nanoseconds: the in-use prefix of the busy
/// table (indices `0..workers`).
pub fn worker_busy_totals() -> Vec<u64> {
    let n = POOL.workers.load(Ordering::Relaxed) as usize;
    WORKER_BUSY[..n.min(MAX_POOL_WORKERS)]
        .iter()
        .map(|b| b.load(Ordering::Relaxed))
        .collect()
}

/// Telemetry-plane self-accounting (`obs::export`): sampler ticks taken,
/// scrape requests served, and one-shot dump files written. Keeping the
/// exporter's own activity in a counter block makes its cost auditable
/// with the same machinery it exports.
pub struct SamplerCounters {
    /// Periodic snapshots taken by the background sampler thread.
    pub samples: AtomicU64,
    /// HTTP scrape requests served by the metrics endpoint.
    pub scrapes: AtomicU64,
    /// `GRB_METRICS_DUMP` one-shot exposition files written.
    pub dump_writes: AtomicU64,
}

static SAMPLER: SamplerCounters = SamplerCounters {
    samples: AtomicU64::new(0),
    scrapes: AtomicU64::new(0),
    dump_writes: AtomicU64::new(0),
};

/// The global telemetry-plane counter block.
pub fn sampler() -> &'static SamplerCounters {
    &SAMPLER
}

/// Point-in-time copy of the telemetry-plane statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplerTotals {
    pub samples: u64,
    pub scrapes: u64,
    pub dump_writes: u64,
}

pub(crate) fn sampler_totals() -> SamplerTotals {
    SamplerTotals {
        samples: SAMPLER.samples.load(Ordering::Relaxed),
        scrapes: SAMPLER.scrapes.load(Ordering::Relaxed),
        dump_writes: SAMPLER.dump_writes.load(Ordering::Relaxed),
    }
}

pub(crate) fn reset() {
    // grbsa: protocol(counter-reset) — test-isolation zeroing; reset
    // points are single-threaded harness boundaries.
    for k in &KERNELS {
        k.reset();
    }
    PENDING.maps_enqueued.store(0, Ordering::Relaxed);
    PENDING.opaques_enqueued.store(0, Ordering::Relaxed);
    PENDING.fusion_hits.store(0, Ordering::Relaxed);
    PENDING.map_traversals.store(0, Ordering::Relaxed);
    PENDING.opaque_drains.store(0, Ordering::Relaxed);
    PENDING.drains.store(0, Ordering::Relaxed);
    PENDING.max_depth.store(0, Ordering::Relaxed);
    PENDING.errors_raised.store(0, Ordering::Relaxed);
    PENDING.errors_deferred.store(0, Ordering::Relaxed);
    DAG.nodes_enqueued.store(0, Ordering::Relaxed);
    DAG.pre_fused.store(0, Ordering::Relaxed);
    DAG.post_fused.store(0, Ordering::Relaxed);
    DAG.fused_chains.store(0, Ordering::Relaxed);
    DAG.async_drains.store(0, Ordering::Relaxed);
    DAG.forces.store(0, Ordering::Relaxed);
    POOL.tasks_spawned.store(0, Ordering::Relaxed);
    POOL.tasks_inline.store(0, Ordering::Relaxed);
    POOL.parks.store(0, Ordering::Relaxed);
    POOL.wakes.store(0, Ordering::Relaxed);
    POOL.scopes.store(0, Ordering::Relaxed);
    POOL.jobs_queued.store(0, Ordering::Relaxed);
    POOL.jobs_dequeued.store(0, Ordering::Relaxed);
    POOL.queue_depth_max.store(0, Ordering::Relaxed);
    POOL.tasks_completed.store(0, Ordering::Relaxed);
    POOL.task_wait_ns.store(0, Ordering::Relaxed);
    POOL.task_run_ns.store(0, Ordering::Relaxed);
    // The worker count survives reset (it describes topology, not load);
    // the busy table zeroes so utilization windows start clean.
    for b in &WORKER_BUSY {
        b.store(0, Ordering::Relaxed);
    }
    SAMPLER.samples.store(0, Ordering::Relaxed);
    SAMPLER.scrapes.store(0, Ordering::Relaxed);
    SAMPLER.dump_writes.store(0, Ordering::Relaxed);
    WORKSPACE.checkouts.store(0, Ordering::Relaxed);
    WORKSPACE.hits.store(0, Ordering::Relaxed);
    WORKSPACE.misses.store(0, Ordering::Relaxed);
    WORKSPACE.bytes_reused.store(0, Ordering::Relaxed);
    DIRECTION.push_picks.store(0, Ordering::Relaxed);
    DIRECTION.pull_picks.store(0, Ordering::Relaxed);
    DIRECTION.transpose_builds.store(0, Ordering::Relaxed);
    DIRECTION.transpose_hits.store(0, Ordering::Relaxed);
    DISPATCH.static_hits.store(0, Ordering::Relaxed);
    DISPATCH.dyn_fallbacks.store(0, Ordering::Relaxed);
    FORMAT.bitmap_picks.store(0, Ordering::Relaxed);
    FORMAT.svec_picks.store(0, Ordering::Relaxed);
    FORMAT.conversions.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that reset or delta-read the global counters.
    fn serialize() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn kernel_recording_accumulates() {
        let _g = serialize();
        reset();
        record_kernel(Kernel::SpGemm, 100, 7, 3, 2, 64);
        record_kernel(Kernel::SpGemm, 50, 3, 1, 1, 16);
        let t = kernel_totals();
        let g = t.iter().find(|k| k.kernel == Kernel::SpGemm).unwrap();
        assert_eq!(g.calls, 2);
        assert_eq!(g.nanos, 150);
        assert_eq!(g.flops, 10);
        assert_eq!(g.bytes_moved, 80);
        reset();
        let g2 = kernel_totals()
            .into_iter()
            .find(|k| k.kernel == Kernel::SpGemm)
            .unwrap();
        assert_eq!(g2.calls, 0);
    }

    #[test]
    fn depth_high_water_mark() {
        let _g = serialize();
        reset();
        note_pending_depth(3);
        note_pending_depth(9);
        note_pending_depth(5);
        assert_eq!(pending_totals().max_depth, 9);
        reset();
    }

    #[test]
    fn workspace_and_direction_recording_accumulates() {
        let _g = serialize();
        let w0 = workspace_totals();
        record_workspace_checkout(false, 0);
        record_workspace_checkout(true, 4096);
        record_workspace_checkout(true, 1024);
        let w1 = workspace_totals();
        assert_eq!(w1.checkouts - w0.checkouts, 3);
        assert_eq!(w1.hits - w0.hits, 2);
        assert_eq!(w1.misses - w0.misses, 1);
        assert_eq!(w1.bytes_reused - w0.bytes_reused, 5120);

        let d0 = direction_totals();
        record_direction_pick(true);
        record_direction_pick(true);
        record_direction_pick(false);
        record_transpose_cache(false);
        record_transpose_cache(true);
        let d1 = direction_totals();
        assert_eq!(d1.pull_picks - d0.pull_picks, 2);
        assert_eq!(d1.push_picks - d0.push_picks, 1);
        assert_eq!(d1.transpose_builds - d0.transpose_builds, 1);
        assert_eq!(d1.transpose_hits - d0.transpose_hits, 1);
    }

    #[test]
    fn dispatch_and_format_recording_accumulates() {
        let _g = serialize();
        let s0 = dispatch_totals();
        record_dispatch_pick(true);
        record_dispatch_pick(true);
        record_dispatch_pick(false);
        let s1 = dispatch_totals();
        assert_eq!(s1.static_hits - s0.static_hits, 2);
        assert_eq!(s1.dyn_fallbacks - s0.dyn_fallbacks, 1);

        let f0 = format_totals();
        record_format_pick(true);
        record_format_pick(false);
        record_format_pick(false);
        record_format_conversion();
        let f1 = format_totals();
        assert_eq!(f1.bitmap_picks - f0.bitmap_picks, 1);
        assert_eq!(f1.svec_picks - f0.svec_picks, 2);
        assert_eq!(f1.conversions - f0.conversions, 1);
    }

    #[test]
    fn pool_scheduler_recording_accumulates() {
        let _g = serialize();
        reset();
        record_pool_enqueue(1);
        record_pool_enqueue(2);
        record_pool_enqueue(1);
        record_pool_dequeue();
        let p = pool_totals();
        assert_eq!(p.jobs_queued, 3);
        assert_eq!(p.jobs_dequeued, 1);
        assert_eq!(p.queue_depth(), 2);
        assert_eq!(p.queue_depth_max, 2);

        record_pool_task(0, 100, 1000);
        record_pool_task(1, 50, 500);
        record_pool_task(0, 10, 200);
        let p = pool_totals();
        assert_eq!(p.tasks_completed, 3);
        assert_eq!(p.task_wait_ns, 160);
        assert_eq!(p.task_run_ns, 1700);
        assert_eq!(p.workers, 2);
        let busy = worker_busy_totals();
        assert_eq!(busy, vec![1200, 500]);

        // Out-of-range worker indices fold into the last slot.
        record_pool_task(MAX_POOL_WORKERS + 7, 0, 42);
        assert_eq!(pool_totals().workers, MAX_POOL_WORKERS as u64);
        assert_eq!(*worker_busy_totals().last().unwrap(), 42);
        reset();
    }

    #[test]
    fn sampler_recording_accumulates() {
        let _g = serialize();
        reset();
        SAMPLER.samples.fetch_add(2, Ordering::Relaxed);
        SAMPLER.scrapes.fetch_add(1, Ordering::Relaxed);
        SAMPLER.dump_writes.fetch_add(1, Ordering::Relaxed);
        let s = sampler_totals();
        assert_eq!((s.samples, s.scrapes, s.dump_writes), (2, 1, 1));
        reset();
        assert_eq!(sampler_totals(), SamplerTotals::default());
    }

    #[test]
    fn dag_recording_accumulates() {
        let _g = serialize();
        reset();
        dag().nodes_enqueued.fetch_add(3, Ordering::Relaxed);
        record_dag_fusion(2, 1);
        record_dag_fusion(0, 0); // no-fusion drain: no chain scored
        record_dag_fusion(0, 4);
        dag().async_drains.fetch_add(1, Ordering::Relaxed);
        dag().forces.fetch_add(2, Ordering::Relaxed);
        let t = dag_totals();
        assert_eq!(t.nodes_enqueued, 3);
        assert_eq!(t.pre_fused, 2);
        assert_eq!(t.post_fused, 5);
        assert_eq!(t.fused_chains, 2);
        assert_eq!(t.async_drains, 1);
        assert_eq!(t.forces, 2);
        reset();
        assert_eq!(dag_totals(), DagTotals::default());
    }

    #[test]
    fn kernel_names_are_unique() {
        let mut names: Vec<_> = KERNEL_LIST.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KERNEL_COUNT);
    }
}
