//! Per-`Context` aggregation (paper §IV).
//!
//! Execution contexts form a tree; a context's resource budget clamps all
//! of its descendants. To make that hierarchy inspectable, spans attribute
//! their wall time to the context they ran under, and a snapshot rolls
//! each context's own totals up into every ancestor — so the root context
//! reports the whole program, and an MPI×OpenMP-style nested context
//! reports exactly its subtree.
//!
//! The registry is bounded ([`MAX_CONTEXTS`]) so that benchmark loops
//! creating contexts by the thousand cannot grow it without limit; spans
//! from unregistered contexts still land in the global kernel counters,
//! they just have no per-context row.

use std::collections::HashMap;
use std::sync::Mutex;

/// Upper bound on registered contexts; later registrations are dropped.
pub const MAX_CONTEXTS: usize = 4096;

#[derive(Default, Clone)]
struct Entry {
    parent: u64,
    name: Option<String>,
    spans: u64,
    nanos: u64,
    flops: u64,
    mem_live: u64,
    mem_high: u64,
}

static REGISTRY: Mutex<Option<HashMap<u64, Entry>>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut HashMap<u64, Entry>) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(HashMap::new))
}

/// Registers a context (id, parent id — `0` for none — and optional
/// label). Idempotent; a later call may fill in a missing name.
pub fn register_context(id: u64, parent: u64, name: Option<&str>) {
    with_registry(|reg| {
        if let Some(e) = reg.get_mut(&id) {
            if e.name.is_none() {
                e.name = name.map(str::to_owned);
            }
            return;
        }
        if reg.len() >= MAX_CONTEXTS {
            return;
        }
        reg.insert(
            id,
            Entry {
                parent,
                name: name.map(str::to_owned),
                ..Entry::default()
            },
        );
    });
}

/// Attributes one finished span to context `id` (no-op for id 0 or
/// unregistered contexts).
pub(crate) fn add_span(id: u64, nanos: u64, flops: u64) {
    if id == 0 {
        return;
    }
    with_registry(|reg| {
        if let Some(e) = reg.get_mut(&id) {
            e.spans += 1;
            e.nanos += nanos;
            e.flops += flops;
        }
    });
}

/// Moves context `id`'s attributed container footprint from `old` to
/// `new` bytes (no-op for unregistered contexts). Called through
/// [`crate::mem::adjust_container`].
pub(crate) fn adjust_mem(id: u64, old: u64, new: u64) {
    with_registry(|reg| {
        if let Some(e) = reg.get_mut(&id) {
            e.mem_live = e.mem_live.saturating_sub(old).saturating_add(new);
            e.mem_high = e.mem_high.max(e.mem_live);
        }
    });
}

/// The label a context was registered with, if any.
pub fn context_name(id: u64) -> Option<String> {
    with_registry(|reg| reg.get(&id).and_then(|e| e.name.clone()))
}

/// Zeroes every context's totals, keeping registrations (names stay
/// resolvable after a [`crate::reset`]). Live memory reflects real
/// allocations and is kept; its high-water mark re-arms at live.
pub(crate) fn reset_totals() {
    with_registry(|reg| {
        for e in reg.values_mut() {
            e.spans = 0;
            e.nanos = 0;
            e.flops = 0;
            e.mem_high = e.mem_live;
        }
    });
}

/// Aggregated span work and memory attributed to a context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CtxTotals {
    pub spans: u64,
    pub nanos: u64,
    pub flops: u64,
    /// Live container-store bytes attributed to this context.
    pub mem_live: u64,
    /// High-water mark of `mem_live` (for rollups: sum of per-context
    /// marks, an upper bound on the subtree's true simultaneous peak).
    pub mem_high: u64,
}

impl CtxTotals {
    fn add(&mut self, other: &CtxTotals) {
        self.spans += other.spans;
        self.nanos += other.nanos;
        self.flops += other.flops;
        self.mem_live += other.mem_live;
        self.mem_high += other.mem_high;
    }
}

/// One context's statistics: its own spans plus the rollup over its whole
/// subtree (`rolled` includes `own`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextStats {
    pub id: u64,
    pub parent: u64,
    pub name: Option<String>,
    pub own: CtxTotals,
    pub rolled: CtxTotals,
}

/// Snapshot of every registered context with subtree rollups, ordered by
/// id (creation order).
pub fn all_context_stats() -> Vec<ContextStats> {
    with_registry(|reg| {
        let own: HashMap<u64, (u64, Option<String>, CtxTotals)> = reg
            .iter()
            .map(|(&id, e)| {
                (
                    id,
                    (
                        e.parent,
                        e.name.clone(),
                        CtxTotals {
                            spans: e.spans,
                            nanos: e.nanos,
                            flops: e.flops,
                            mem_live: e.mem_live,
                            mem_high: e.mem_high,
                        },
                    ),
                )
            })
            .collect();
        let mut rolled: HashMap<u64, CtxTotals> =
            own.iter().map(|(&id, (_, _, t))| (id, *t)).collect();
        // Push every context's own totals into each ancestor. Parent links
        // can dangle (ancestor beyond MAX_CONTEXTS): the walk just stops.
        for (&id, (parent, _, t)) in &own {
            let mut cur = *parent;
            let mut hops = 0;
            while cur != 0 && cur != id && hops < MAX_CONTEXTS {
                match own.get(&cur) {
                    Some((next, _, _)) => {
                        rolled.entry(cur).and_modify(|r| r.add(t));
                        cur = *next;
                    }
                    None => break,
                }
                hops += 1;
            }
        }
        let mut out: Vec<ContextStats> = own
            .into_iter()
            .map(|(id, (parent, name, t))| ContextStats {
                id,
                parent,
                name,
                own: t,
                rolled: rolled[&id],
            })
            .collect();
        out.sort_by_key(|c| c.id);
        out
    })
}

/// Statistics for a single context id, or `None` if it was never
/// registered (e.g. created while telemetry was disabled).
pub fn context_stats(id: u64) -> Option<ContextStats> {
    all_context_stats().into_iter().find(|c| c.id == id)
}

/// `root` plus every registered context whose ancestor chain reaches it
/// (the subtree the §IV rollups aggregate over). Contains just `root`
/// when nothing else is registered under it — including when `root`
/// itself was never registered. Used by `events::explain_for_subtree` to
/// scope decision history to one context tree.
pub fn subtree_ids(root: u64) -> Vec<u64> {
    with_registry(|reg| {
        let mut out = vec![root];
        for (&id, e) in reg.iter() {
            if id == root {
                continue;
            }
            let mut cur = e.parent;
            let mut hops = 0;
            while cur != 0 && hops < MAX_CONTEXTS {
                if cur == root {
                    out.push(id);
                    break;
                }
                match reg.get(&cur) {
                    Some(p) if p.parent != cur => cur = p.parent,
                    _ => break,
                }
                hops += 1;
            }
        }
        out.sort_unstable();
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_sums_descendants() {
        // Use ids far above anything the process allocates organically.
        let base = 1_000_000_000;
        register_context(base + 1, 0, Some("root"));
        register_context(base + 2, base + 1, Some("child"));
        register_context(base + 3, base + 2, None);
        add_span(base + 2, 100, 5);
        add_span(base + 3, 40, 1);
        let stats = all_context_stats();
        let root = stats.iter().find(|c| c.id == base + 1).unwrap();
        assert_eq!(root.own.spans, 0);
        assert_eq!(root.rolled.spans, 2);
        assert_eq!(root.rolled.nanos, 140);
        assert_eq!(root.rolled.flops, 6);
        let child = stats.iter().find(|c| c.id == base + 2).unwrap();
        assert_eq!(child.own.nanos, 100);
        assert_eq!(child.rolled.nanos, 140);
        assert_eq!(child.name.as_deref(), Some("child"));
        let leaf = context_stats(base + 3).unwrap();
        assert_eq!(leaf.rolled.nanos, 40);
        assert_eq!(leaf.parent, base + 2);
    }

    #[test]
    fn subtree_ids_follow_parent_links() {
        let base = 4_000_000_000;
        register_context(base + 1, 0, Some("root"));
        register_context(base + 2, base + 1, None);
        register_context(base + 3, base + 2, None);
        register_context(base + 9, 0, Some("other"));
        let ids = subtree_ids(base + 1);
        assert!(ids.contains(&(base + 1)) && ids.contains(&(base + 2)) && ids.contains(&(base + 3)));
        assert!(!ids.contains(&(base + 9)));
        // An unregistered root still names itself.
        assert_eq!(subtree_ids(base + 77), vec![base + 77]);
    }

    #[test]
    fn reregistration_fills_name_only() {
        let id = 2_000_000_000;
        register_context(id, 0, None);
        register_context(id, 999, Some("late-name"));
        let s = context_stats(id).unwrap();
        assert_eq!(s.name.as_deref(), Some("late-name"));
        assert_eq!(s.parent, 0, "parent link is fixed at first registration");
    }
}
