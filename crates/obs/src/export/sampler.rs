//! The background sampler: a bounded ring of periodic counter snapshots.
//!
//! Cumulative counters answer "how much since startup"; the serving-layer
//! questions are "how fast right now" and "how bad is the tail lately".
//! Both are deltas between two points in time, so the sampler keeps a
//! ring of cheap periodic [`SamplePoint`]s (kernel totals, latency
//! histograms, pool totals) and [`window`] hands back the oldest and
//! newest for rate and rolling-percentile computation.
//!
//! The thread only exists after [`start`] (called from `export::init`
//! when `GRB_METRICS_ADDR` or `GRB_METRICS_DUMP` is set); a process that
//! never opts in pays nothing. Each tick guards on [`crate::enabled`],
//! so disabling telemetry mid-run idles the sampler to a relaxed load
//! and a sleep. Following the paper's Fig. 1 thread-safety stance, the
//! ring is a plain mutex-guarded deque touched a few times per second —
//! never on a kernel hot path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::counters::{self, KernelTotals, PoolTotals};
use crate::hist::HistTotals;
use crate::span;

/// Default sampler period in milliseconds (`GRB_METRICS_INTERVAL_MS`).
pub const DEFAULT_INTERVAL_MS: u64 = 250;

/// Default ring capacity in samples (`GRB_METRICS_RING`): one minute of
/// history at the default period.
pub const DEFAULT_RING_CAPACITY: usize = 240;

/// One periodic snapshot of the rate-relevant counters.
#[derive(Debug, Clone)]
pub struct SamplePoint {
    /// Capture time, nanoseconds since the telemetry epoch.
    pub t_ns: u64,
    /// Per-kernel cumulative totals at capture time.
    pub kernels: Vec<KernelTotals>,
    /// Per-kernel cumulative latency histograms, same order as `kernels`.
    pub hists: Vec<HistTotals>,
    /// Cumulative pending-queue drains.
    pub drains: u64,
    /// Cumulative pool totals.
    pub pool: PoolTotals,
    /// Per-worker cumulative busy nanoseconds.
    pub worker_busy: Vec<u64>,
}

impl SamplePoint {
    /// The all-zero sample at the telemetry epoch — the implicit baseline
    /// when the ring is empty or holds a single point.
    pub fn zero() -> Self {
        SamplePoint {
            t_ns: 0,
            kernels: Vec::new(),
            hists: Vec::new(),
            drains: 0,
            pool: PoolTotals::default(),
            worker_busy: Vec::new(),
        }
    }

    /// Cumulative calls for kernel `k` at this point (0 if unseen).
    pub fn calls(&self, k: counters::Kernel) -> u64 {
        self.kernels
            .iter()
            .find(|t| t.kernel == k)
            .map_or(0, |t| t.calls)
    }

    /// Cumulative bytes moved across all kernels at this point.
    pub fn bytes_moved(&self) -> u64 {
        self.kernels.iter().map(|t| t.bytes_moved).sum()
    }

    /// Cumulative latency histogram for kernel `k` (empty if unseen).
    pub fn hist(&self, k: counters::Kernel) -> HistTotals {
        self.kernels
            .iter()
            .position(|t| t.kernel == k)
            .and_then(|i| self.hists.get(i))
            .copied()
            .unwrap_or_default()
    }
}

/// Takes one snapshot of the rate-relevant counters right now.
pub fn capture() -> SamplePoint {
    let hists = crate::hist::kernel_hists();
    SamplePoint {
        t_ns: span::epoch().elapsed().as_nanos() as u64,
        kernels: counters::kernel_totals(),
        hists: hists.into_iter().map(|kh| kh.hist).collect(),
        drains: counters::pending_totals().drains,
        pool: counters::pool_totals(),
        worker_busy: counters::worker_busy_totals(),
    }
}

struct Ring {
    points: VecDeque<SamplePoint>,
    capacity: usize,
}

static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
static RUNNING: AtomicBool = AtomicBool::new(false);

fn ring() -> &'static Mutex<Ring> {
    RING.get_or_init(|| {
        let capacity = std::env::var("GRB_METRICS_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 2)
            .unwrap_or(DEFAULT_RING_CAPACITY);
        Mutex::new(Ring {
            points: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        })
    })
}

/// The sampler period, honouring `GRB_METRICS_INTERVAL_MS`.
pub fn interval() -> Duration {
    static MS: OnceLock<u64> = OnceLock::new();
    Duration::from_millis(*MS.get_or_init(|| {
        std::env::var("GRB_METRICS_INTERVAL_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(DEFAULT_INTERVAL_MS)
    }))
}

/// Takes one sample immediately and pushes it onto the ring (evicting the
/// oldest at capacity). Also the dump path's way to guarantee a fresh
/// endpoint before rendering.
pub fn sample_now() {
    let point = capture();
    let mut r = ring().lock().unwrap_or_else(|e| e.into_inner());
    if r.points.len() == r.capacity {
        r.points.pop_front();
    }
    r.points.push_back(point);
    drop(r);
    counters::sampler().samples.fetch_add(1, Ordering::Relaxed);
}

/// The rate window: the newest ring sample paired with the oldest one
/// strictly before it. With fewer than two distinct points the baseline
/// is the zero sample at the epoch, so rates degrade to lifetime
/// averages instead of vanishing. `None` only when no sample was ever
/// taken *and* telemetry is disabled (nothing meaningful to report).
pub fn window() -> (SamplePoint, SamplePoint) {
    let r = ring().lock().unwrap_or_else(|e| e.into_inner());
    let newest = r.points.back().cloned();
    let oldest = r.points.front().cloned();
    drop(r);
    let newest = newest.unwrap_or_else(capture);
    let oldest = match oldest {
        Some(o) if o.t_ns < newest.t_ns => o,
        _ => SamplePoint::zero(),
    };
    (oldest, newest)
}

/// Number of samples currently retained in the ring.
pub fn ring_len() -> usize {
    ring().lock().unwrap_or_else(|e| e.into_inner()).points.len()
}

/// Whether the background sampler thread is running.
pub fn running() -> bool {
    RUNNING.load(Ordering::Relaxed)
}

/// Starts the background sampler thread (idempotent). The thread samples
/// every [`interval`] while telemetry is enabled and idles otherwise; it
/// is detached and lives for the remainder of the process.
pub fn start() {
    // grbsa: protocol(mode-flag) — start-once latch; the RMW's atomicity
    // alone decides the winner, no data is published through it.
    if RUNNING.swap(true, Ordering::Relaxed) {
        return;
    }
    let period = interval();
    let spawned = std::thread::Builder::new()
        .name("grb-sampler".to_string())
        .spawn(move || loop {
            std::thread::sleep(period);
            if crate::enabled() {
                sample_now();
            }
        });
    if let Err(e) = spawned {
        eprintln!("[grb-obs] failed to spawn metrics sampler thread: {e}");
        // grbsa: protocol(mode-flag) — advisory start/stop flag; a racing
        // reader at worst re-attempts the spawn.
        RUNNING.store(false, Ordering::Relaxed);
    }
}

/// Clears the ring (test isolation; the thread, if any, keeps running).
pub fn reset_ring() {
    let mut r = ring().lock().unwrap_or_else(|e| e.into_inner());
    r.points.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Kernel;

    #[test]
    fn window_bootstraps_from_zero() {
        let _g = crate::test_guard();
        reset_ring();
        let (old, new) = window();
        assert_eq!(old.t_ns, 0);
        assert!(new.t_ns >= old.t_ns);

        sample_now();
        let (old, new) = window();
        assert_eq!(old.t_ns, 0, "single sample still baselines at zero");
        assert!(new.t_ns > 0);
        reset_ring();
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let _g = crate::test_guard();
        reset_ring();
        for _ in 0..5 {
            sample_now();
        }
        let (old, new) = window();
        assert!(old.t_ns <= new.t_ns);
        assert!(ring_len() <= DEFAULT_RING_CAPACITY);
        reset_ring();
    }

    #[test]
    fn sample_point_lookups_default_to_zero() {
        let p = SamplePoint::zero();
        assert_eq!(p.calls(Kernel::SpGemm), 0);
        assert_eq!(p.bytes_moved(), 0);
        assert_eq!(p.hist(Kernel::SpMv).count, 0);
    }
}
