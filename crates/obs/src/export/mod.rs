//! `obs::export` — the live telemetry plane.
//!
//! Everything the crate collects post-mortem (counters, gauges,
//! histograms, per-Context rollups) becomes scrapeable while the process
//! runs:
//!
//! * [`registry`] — the authoritative table of metric families under
//!   stable dotted names (`grb.pool.queue_depth`, …), each with a kind
//!   and help string;
//! * [`sampler`] — a background thread keeping a bounded ring of periodic
//!   counter snapshots, so rates (kernels/sec, drains/sec, bytes/sec) and
//!   rolling p99s are deltas over a real window instead of lifetime
//!   averages;
//! * [`server`] — a hand-rolled TCP endpoint (`GRB_METRICS_ADDR`)
//!   answering every request with the Prometheus text exposition
//!   (v0.0.4), plus a `GRB_METRICS_DUMP=<path>` one-shot for headless CI;
//! * per-Context labels — the paper's Fig. 2 context hierarchy shows up
//!   as a `ctx` label, so per-tenant load is visible live.
//!
//! Nothing here touches a kernel hot path: hot paths feed the existing
//! relaxed counters, and the plane reads them a few times per second.
//! When neither environment variable is set, [`init`] is a pair of
//! missing-env lookups and [`write_dump_if_requested`] allocates nothing.

pub mod registry;
pub mod sampler;
pub mod server;

use std::net::SocketAddr;
use std::sync::atomic::Ordering;

use crate::counters;
use crate::hist::HistTotals;
use registry::MetricDesc;

/// One labeled sample of a metric family.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label pairs (possibly empty for scalar families).
    pub labels: Vec<(&'static str, String)>,
    pub value: f64,
}

impl Sample {
    fn scalar(value: f64) -> Self {
        Sample {
            labels: Vec::new(),
            value,
        }
    }

    fn labeled(key: &'static str, val: String, value: f64) -> Self {
        Sample {
            labels: vec![(key, val)],
            value,
        }
    }
}

/// A metric family ready for exposition: its registry row plus the
/// samples collected this scrape.
#[derive(Debug, Clone)]
pub struct Family {
    pub desc: &'static MetricDesc,
    pub samples: Vec<Sample>,
}

/// Starts whatever the environment asks for: binds the scrape endpoint
/// when `GRB_METRICS_ADDR` is set, and runs the background sampler when
/// either the endpoint or `GRB_METRICS_DUMP` wants window rates.
/// Idempotent; returns the endpoint's bound address, if any.
pub fn init() -> Option<SocketAddr> {
    let addr = server::start_if_requested();
    if addr.is_some() || dump_path().is_some() {
        sampler::start();
    }
    addr
}

/// The scrape endpoint's bound address (see [`server::bound_addr`]).
pub fn bound_addr() -> Option<SocketAddr> {
    server::bound_addr()
}

fn dump_path() -> Option<String> {
    std::env::var("GRB_METRICS_DUMP").ok().filter(|p| !p.is_empty())
}

/// If `GRB_METRICS_DUMP=<path>` is set, takes a fresh sample, writes the
/// exposition there, and returns the path. Mirrors
/// [`crate::timeline::write_trace_if_requested`]: write failures go to
/// stderr, not panics. With the variable unset this returns immediately
/// without allocating.
pub fn write_dump_if_requested() -> Option<String> {
    let path = dump_path()?;
    sampler::sample_now();
    let text = render();
    match std::fs::write(&path, &text) {
        Ok(()) => {
            counters::sampler().dump_writes.fetch_add(1, Ordering::Relaxed);
            Some(path)
        }
        Err(e) => {
            eprintln!("[grb-obs] failed to write GRB_METRICS_DUMP file {path}: {e}");
            None
        }
    }
}

/// Per-bucket histogram difference `new - old` (saturating), for rolling
/// percentiles over a sampler window. The delta's `max` is taken from
/// `new` — the true window max is unknowable from cumulative histograms,
/// and percentile clamping only needs an upper bound.
fn hist_delta(new: &HistTotals, old: &HistTotals) -> HistTotals {
    let mut d = HistTotals::new();
    for i in 0..d.buckets.len() {
        d.buckets[i] = new.buckets[i].saturating_sub(old.buckets[i]);
    }
    d.count = new.count.saturating_sub(old.count);
    d.sum = new.sum.saturating_sub(old.sum);
    d.max = new.max;
    d
}

fn rate(new: u64, old: u64, dt: f64) -> f64 {
    if dt <= 0.0 {
        0.0
    } else {
        new.saturating_sub(old) as f64 / dt
    }
}

/// Collects every registry family's current samples: cumulative values
/// from a fresh [`crate::snapshot`], window rates and rolling percentiles
/// from the sampler ring. Families appear in registry order; label-fanned
/// families may be empty when their label domain is (no contexts
/// registered, no pool tasks completed yet).
pub fn collect() -> Vec<Family> {
    let snap = crate::snapshot();
    let (old, new) = sampler::window();
    let dt = new.t_ns.saturating_sub(old.t_ns) as f64 / 1e9;
    let mut out = Vec::with_capacity(registry::registry().len());
    let mut push = |name: &'static str, samples: Vec<Sample>| {
        let desc = registry::find(name).expect("collect() names come from the registry");
        out.push(Family { desc, samples });
    };

    // Per-kernel families: one row per kernel, every kernel always
    // emitted so the families exist from the first scrape on.
    let per_kernel = |f: &dyn Fn(&counters::KernelTotals) -> f64| -> Vec<Sample> {
        snap.kernels
            .iter()
            .map(|k| Sample::labeled("kernel", k.kernel.name().to_string(), f(k)))
            .collect()
    };
    push("grb.kernel.calls", per_kernel(&|k| k.calls as f64));
    push("grb.kernel.nanos", per_kernel(&|k| k.nanos as f64));
    push("grb.kernel.flops", per_kernel(&|k| k.flops as f64));
    push("grb.kernel.nnz_in", per_kernel(&|k| k.nnz_in as f64));
    push("grb.kernel.nnz_out", per_kernel(&|k| k.nnz_out as f64));
    push("grb.kernel.bytes_moved", per_kernel(&|k| k.bytes_moved as f64));
    push(
        "grb.kernel.p50_ns",
        per_kernel(&|k| snap.hist(k.kernel).p50() as f64),
    );
    push(
        "grb.kernel.p99_ns",
        per_kernel(&|k| snap.hist(k.kernel).p99() as f64),
    );
    push(
        "grb.kernel.max_ns",
        per_kernel(&|k| snap.hist(k.kernel).max as f64),
    );
    push(
        "grb.kernel.rate",
        per_kernel(&|k| rate(new.calls(k.kernel), old.calls(k.kernel), dt)),
    );
    push(
        "grb.kernel.rolling_p99_ns",
        per_kernel(&|k| {
            hist_delta(&new.hist(k.kernel), &old.hist(k.kernel)).p99() as f64
        }),
    );

    let p = &snap.pending;
    push("grb.pending.maps_enqueued", vec![Sample::scalar(p.maps_enqueued as f64)]);
    push("grb.pending.opaques_enqueued", vec![Sample::scalar(p.opaques_enqueued as f64)]);
    push("grb.pending.fusion_hits", vec![Sample::scalar(p.fusion_hits as f64)]);
    push("grb.pending.map_traversals", vec![Sample::scalar(p.map_traversals as f64)]);
    push("grb.pending.opaque_drains", vec![Sample::scalar(p.opaque_drains as f64)]);
    push("grb.pending.drains", vec![Sample::scalar(p.drains as f64)]);
    push("grb.pending.max_depth", vec![Sample::scalar(p.max_depth as f64)]);
    push("grb.pending.errors_raised", vec![Sample::scalar(p.errors_raised as f64)]);
    push("grb.pending.errors_deferred", vec![Sample::scalar(p.errors_deferred as f64)]);
    push(
        "grb.pending.drain_rate",
        vec![Sample::scalar(rate(new.drains, old.drains, dt))],
    );

    let dg = &snap.dag;
    push("grb.dag.nodes_enqueued", vec![Sample::scalar(dg.nodes_enqueued as f64)]);
    push("grb.dag.pre_fused", vec![Sample::scalar(dg.pre_fused as f64)]);
    push("grb.dag.post_fused", vec![Sample::scalar(dg.post_fused as f64)]);
    push("grb.dag.fused_chains", vec![Sample::scalar(dg.fused_chains as f64)]);
    push("grb.dag.async_drains", vec![Sample::scalar(dg.async_drains as f64)]);
    push("grb.dag.forces", vec![Sample::scalar(dg.forces as f64)]);

    let ws = &snap.workspace;
    push("grb.workspace.checkouts", vec![Sample::scalar(ws.checkouts as f64)]);
    push("grb.workspace.hits", vec![Sample::scalar(ws.hits as f64)]);
    push("grb.workspace.misses", vec![Sample::scalar(ws.misses as f64)]);
    push("grb.workspace.bytes_reused", vec![Sample::scalar(ws.bytes_reused as f64)]);

    let d = &snap.direction;
    push("grb.direction.push_picks", vec![Sample::scalar(d.push_picks as f64)]);
    push("grb.direction.pull_picks", vec![Sample::scalar(d.pull_picks as f64)]);
    push("grb.direction.transpose_builds", vec![Sample::scalar(d.transpose_builds as f64)]);
    push("grb.direction.transpose_hits", vec![Sample::scalar(d.transpose_hits as f64)]);

    push("grb.dispatch.static_hits", vec![Sample::scalar(snap.dispatch.static_hits as f64)]);
    push("grb.dispatch.dyn_fallbacks", vec![Sample::scalar(snap.dispatch.dyn_fallbacks as f64)]);

    let f = &snap.format;
    push("grb.format.bitmap_picks", vec![Sample::scalar(f.bitmap_picks as f64)]);
    push("grb.format.svec_picks", vec![Sample::scalar(f.svec_picks as f64)]);
    push("grb.format.conversions", vec![Sample::scalar(f.conversions as f64)]);

    let pl = &snap.pool;
    push("grb.pool.tasks_spawned", vec![Sample::scalar(pl.tasks_spawned as f64)]);
    push("grb.pool.tasks_inline", vec![Sample::scalar(pl.tasks_inline as f64)]);
    push("grb.pool.parks", vec![Sample::scalar(pl.parks as f64)]);
    push("grb.pool.wakes", vec![Sample::scalar(pl.wakes as f64)]);
    push("grb.pool.scopes", vec![Sample::scalar(pl.scopes as f64)]);
    push("grb.pool.jobs_queued", vec![Sample::scalar(pl.jobs_queued as f64)]);
    push("grb.pool.jobs_dequeued", vec![Sample::scalar(pl.jobs_dequeued as f64)]);
    push("grb.pool.queue_depth", vec![Sample::scalar(pl.queue_depth() as f64)]);
    push("grb.pool.queue_depth_max", vec![Sample::scalar(pl.queue_depth_max as f64)]);
    push("grb.pool.tasks_completed", vec![Sample::scalar(pl.tasks_completed as f64)]);
    push("grb.pool.task_wait_ns", vec![Sample::scalar(pl.task_wait_ns as f64)]);
    push("grb.pool.task_run_ns", vec![Sample::scalar(pl.task_run_ns as f64)]);
    push("grb.pool.workers", vec![Sample::scalar(pl.workers as f64)]);
    push(
        "grb.pool.worker_busy_ns",
        snap.pool_workers
            .iter()
            .enumerate()
            .map(|(i, &b)| Sample::labeled("worker", i.to_string(), b as f64))
            .collect(),
    );
    // Mean busy fraction across the busy table over the window: the sum
    // of per-worker busy deltas spread over `workers × dt` of wall time.
    let utilization = {
        let workers = new.pool.workers.max(old.pool.workers);
        if workers == 0 || dt <= 0.0 {
            0.0
        } else {
            let busy_new: u64 = new.worker_busy.iter().sum();
            let busy_old: u64 = old.worker_busy.iter().sum();
            let busy = busy_new.saturating_sub(busy_old) as f64 / 1e9;
            (busy / (workers as f64 * dt)).min(1.0)
        }
    };
    push("grb.pool.utilization", vec![Sample::scalar(utilization)]);

    let m = &snap.mem;
    push("grb.mem.container_live_bytes", vec![Sample::scalar(m.container_live as f64)]);
    push("grb.mem.container_high_bytes", vec![Sample::scalar(m.container_high as f64)]);
    push("grb.mem.workspace_live_bytes", vec![Sample::scalar(m.workspace_live as f64)]);
    push("grb.mem.workspace_high_bytes", vec![Sample::scalar(m.workspace_high as f64)]);

    // Per-context rollups (Fig. 2): label by context name when one was
    // registered, falling back to the numeric id. A name shared by several
    // contexts gets an `#id` suffix so no two samples of a family ever
    // repeat a label set (the exposition forbids it).
    let mut name_counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for c in &snap.contexts {
        if let Some(n) = &c.name {
            *name_counts.entry(n.as_str()).or_insert(0) += 1;
        }
    }
    let per_ctx = |f: &dyn Fn(&crate::ctxreg::ContextStats) -> f64| -> Vec<Sample> {
        snap.contexts
            .iter()
            .map(|c| {
                let label = match &c.name {
                    Some(n) if name_counts[n.as_str()] > 1 => format!("{n}#{}", c.id),
                    Some(n) => n.clone(),
                    None => c.id.to_string(),
                };
                Sample::labeled("ctx", label, f(c))
            })
            .collect()
    };
    push("grb.ctx.spans", per_ctx(&|c| c.rolled.spans as f64));
    push("grb.ctx.nanos", per_ctx(&|c| c.rolled.nanos as f64));
    push("grb.ctx.mem_live_bytes", per_ctx(&|c| c.rolled.mem_live as f64));
    push("grb.ctx.mem_high_bytes", per_ctx(&|c| c.rolled.mem_high as f64));

    push(
        "grb.decisions.by_reason",
        snap.decisions
            .iter()
            .map(|(r, c)| Sample::labeled("reason", r.code().to_string(), *c as f64))
            .collect(),
    );
    push("grb.decisions.total", vec![Sample::scalar(snap.decisions_total as f64)]);
    push("grb.events.total", vec![Sample::scalar(snap.events_total as f64)]);

    push(
        "grb.rate.bytes",
        vec![Sample::scalar(rate(new.bytes_moved(), old.bytes_moved(), dt))],
    );

    let s = &snap.sampler;
    push("grb.sampler.samples", vec![Sample::scalar(s.samples as f64)]);
    push("grb.sampler.scrapes", vec![Sample::scalar(s.scrapes as f64)]);
    push("grb.sampler.dump_writes", vec![Sample::scalar(s.dump_writes as f64)]);

    out
}

/// Dotted registry name → exposition metric name.
pub fn mangle(name: &str) -> String {
    name.replace('.', "_")
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the full Prometheus text exposition (v0.0.4): `# HELP` and
/// `# TYPE` per family, then one line per sample. Families whose label
/// domain is currently empty are omitted entirely.
pub fn render() -> String {
    let mut out = String::with_capacity(8 * 1024);
    for fam in collect() {
        if fam.samples.is_empty() {
            continue;
        }
        let name = mangle(fam.desc.name);
        out.push_str("# HELP ");
        out.push_str(&name);
        out.push(' ');
        out.push_str(&escape_help(fam.desc.help));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&name);
        out.push(' ');
        out.push_str(fam.desc.kind.keyword());
        out.push('\n');
        for s in &fam.samples {
            out.push_str(&name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&escape_label(v));
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&fmt_value(s.value));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_covers_the_whole_registry_in_order() {
        let fams = collect();
        let expected: Vec<_> = registry::registry().iter().map(|d| d.name).collect();
        let got: Vec<_> = fams.iter().map(|f| f.desc.name).collect();
        assert_eq!(got, expected, "collect() must mirror the registry");
    }

    #[test]
    fn render_emits_help_type_and_samples() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::counters::record_kernel(crate::Kernel::SpMv, 1000, 10, 5, 5, 128);
        let text = render();
        crate::set_enabled(false);
        assert!(text.contains("# HELP grb_kernel_calls "));
        assert!(text.contains("# TYPE grb_kernel_calls counter"));
        assert!(text.contains("grb_kernel_calls{kernel=\"spmv\"} "));
        assert!(text.contains("# TYPE grb_pool_queue_depth gauge"));
        assert!(text.contains("grb_pool_utilization "));
        assert!(text.contains("grb_sampler_samples "));
        // Every non-comment line parses as `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (head, val) = line.rsplit_once(' ').expect("line has a value");
            assert!(!head.is_empty());
            assert!(val.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
    }

    #[test]
    fn window_rates_reflect_recorded_work() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        sampler::reset_ring();
        sampler::sample_now();
        for _ in 0..50 {
            crate::counters::record_kernel(crate::Kernel::SpGemm, 2048, 1, 1, 1, 64);
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        sampler::sample_now();
        let fams = collect();
        let rate_fam = fams
            .iter()
            .find(|f| f.desc.name == "grb.kernel.rate")
            .unwrap();
        let spgemm = rate_fam
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "spgemm"))
            .unwrap();
        assert!(spgemm.value > 0.0, "50 calls in the window must yield a rate");
        let p99_fam = fams
            .iter()
            .find(|f| f.desc.name == "grb.kernel.rolling_p99_ns")
            .unwrap();
        let spgemm_p99 = p99_fam
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "spgemm"))
            .unwrap();
        assert!(
            spgemm_p99.value >= 1024.0 && spgemm_p99.value <= 4096.0,
            "rolling p99 {} escaped the sample bucket",
            spgemm_p99.value
        );
        crate::set_enabled(false);
        sampler::reset_ring();
        crate::reset();
    }

    #[test]
    fn dump_is_a_noop_without_the_env_var() {
        // The harness never sets GRB_METRICS_DUMP for unit tests.
        if std::env::var("GRB_METRICS_DUMP").is_ok() {
            return;
        }
        assert!(write_dump_if_requested().is_none());
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(0.25), "0.25");
        assert_eq!(fmt_value(-3.0), "-3");
    }

    #[test]
    fn hist_delta_windows() {
        let mut old = HistTotals::new();
        let mut new = HistTotals::new();
        old.add_sample(100);
        new.add_sample(100);
        new.add_sample(5000);
        let d = hist_delta(&new, &old);
        assert_eq!(d.count, 1);
        assert!(d.p99() >= 4096, "window holds only the slow sample");
    }
}
