//! The metric registry: the single authoritative table of every metric
//! this crate exports, under stable dotted names.
//!
//! Counter blocks ([`crate::counters`]), memory gauges ([`crate::mem`]),
//! latency histograms ([`crate::hist`]), and per-Context rollups
//! ([`crate::ctxreg`]) all surface here — one row per family, with the
//! kind and help string the Prometheus exposition needs. grblint rule 9
//! (`counter-without-metric`) enforces the invariant in the other
//! direction: every `pub … : AtomicU64` field of an `obs::counters` block
//! must have a registry row whose dotted name ends in that field, so a
//! new counter cannot silently stay invisible to the telemetry plane.

/// What a metric family's value means over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone cumulative count (resets only with [`crate::reset`]).
    Counter,
    /// Point-in-time level; may go up and down.
    Gauge,
}

impl MetricKind {
    /// The exposition `# TYPE` keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One registered metric family.
#[derive(Debug, Clone, Copy)]
pub struct MetricDesc {
    /// Stable dotted name (`grb.<block>.<field>`); the exposition mangles
    /// dots to underscores.
    pub name: &'static str,
    pub kind: MetricKind,
    /// One-line help string for the `# HELP` exposition line.
    pub help: &'static str,
}

const C: MetricKind = MetricKind::Counter;
const G: MetricKind = MetricKind::Gauge;

const fn m(name: &'static str, kind: MetricKind, help: &'static str) -> MetricDesc {
    MetricDesc { name, kind, help }
}

/// Every exported metric family, in exposition order. Labeled families
/// (`kernel`, `worker`, `ctx`, `reason`) fan out to one sample per label
/// value at collection time.
static REGISTRY: &[MetricDesc] = &[
    // Per-kernel work accounting (label: kernel).
    m("grb.kernel.calls", C, "Finished invocations per kernel family."),
    m("grb.kernel.nanos", C, "Cumulative kernel wall time in nanoseconds."),
    m("grb.kernel.flops", C, "Cumulative semiring operations performed."),
    m("grb.kernel.nnz_in", C, "Cumulative input nonzeros consumed."),
    m("grb.kernel.nnz_out", C, "Cumulative output nonzeros produced."),
    m("grb.kernel.bytes_moved", C, "Cumulative bytes read and written by kernels."),
    m("grb.kernel.p50_ns", G, "Median kernel latency over the process lifetime."),
    m("grb.kernel.p99_ns", G, "99th-percentile kernel latency over the process lifetime."),
    m("grb.kernel.max_ns", G, "Largest kernel latency observed."),
    m("grb.kernel.rate", G, "Kernel invocations per second over the sampler window."),
    m("grb.kernel.rolling_p99_ns", G, "99th-percentile kernel latency over the sampler window."),
    // Pending-queue / fusion machinery.
    m("grb.pending.maps_enqueued", C, "Fusible map stages enqueued."),
    m("grb.pending.opaques_enqueued", C, "Opaque stages enqueued."),
    m("grb.pending.fusion_hits", C, "Map stages absorbed into a preceding traversal."),
    m("grb.pending.map_traversals", C, "Fused map traversals executed."),
    m("grb.pending.opaque_drains", C, "Opaque stages executed at drain time."),
    m("grb.pending.drains", C, "Queue-drain events that found work."),
    m("grb.pending.max_depth", G, "High-water pending-queue depth."),
    m("grb.pending.errors_raised", C, "Execution errors constructed."),
    m("grb.pending.errors_deferred", C, "Errors surfaced from a drained deferred sequence."),
    m("grb.pending.drain_rate", G, "Queue drains per second over the sampler window."),
    // Nonblocking op-DAG engine.
    m("grb.dag.nodes_enqueued", C, "Lazy op nodes enqueued on container DAGs."),
    m("grb.dag.pre_fused", C, "Input-side map stages folded into node kernels."),
    m("grb.dag.post_fused", C, "Trailing map stages drained with their node."),
    m("grb.dag.fused_chains", C, "Node drains that fused at least one stage."),
    m("grb.dag.async_drains", C, "DAG drains handed to the worker pool."),
    m("grb.dag.forces", C, "Forced DAG drains (read/wait/self-input barriers)."),
    // Kernel-workspace reuse.
    m("grb.workspace.checkouts", C, "Scratch checkouts requested by kernels."),
    m("grb.workspace.hits", C, "Checkouts served from the per-thread cache."),
    m("grb.workspace.misses", C, "Checkouts that allocated a fresh workspace."),
    m("grb.workspace.bytes_reused", C, "Buffer capacity handed back on cache hits."),
    // Direction-optimizing dispatch.
    m("grb.direction.push_picks", C, "mxv/vxm dispatches resolved to the push kernel."),
    m("grb.direction.pull_picks", C, "mxv/vxm dispatches resolved to the pull kernel."),
    m("grb.direction.transpose_builds", C, "Transposes computed into the memo cache."),
    m("grb.direction.transpose_hits", C, "Transpose requests served from the memo cache."),
    // Static-vs-dyn kernel registry dispatch.
    m("grb.dispatch.static_hits", C, "Dispatches served by a monomorphized kernel."),
    m("grb.dispatch.dyn_fallbacks", C, "Dispatches on the erased-closure fallback path."),
    // Vector storage-format picks.
    m("grb.format.bitmap_picks", C, "Results stored in bitmap format."),
    m("grb.format.svec_picks", C, "Results kept in sparse index/value format."),
    m("grb.format.conversions", C, "Bitmap-to-sparse conversions forced downstream."),
    // Thread-pool scheduler.
    m("grb.pool.tasks_spawned", C, "Tasks submitted to pool workers."),
    m("grb.pool.tasks_inline", C, "Tasks executed inline in nested parallel regions."),
    m("grb.pool.parks", C, "Workers blocked waiting for work."),
    m("grb.pool.wakes", C, "Parked workers woken by a new job."),
    m("grb.pool.scopes", C, "ThreadPool::scope entries."),
    m("grb.pool.jobs_queued", C, "Jobs pushed onto the shared pool queue."),
    m("grb.pool.jobs_dequeued", C, "Jobs taken off the queue by workers."),
    m("grb.pool.queue_depth", G, "Jobs currently waiting in the pool queue."),
    m("grb.pool.queue_depth_max", G, "High-water pool queue depth."),
    m("grb.pool.tasks_completed", C, "Offloaded tasks that ran to completion."),
    m("grb.pool.task_wait_ns", C, "Cumulative nanoseconds tasks sat queued."),
    m("grb.pool.task_run_ns", C, "Cumulative nanoseconds tasks spent executing."),
    m("grb.pool.workers", G, "Worker busy-table slots in use."),
    m("grb.pool.worker_busy_ns", C, "Cumulative busy nanoseconds per worker."),
    m("grb.pool.utilization", G, "Mean worker busy fraction over the sampler window."),
    // Memory gauges.
    m("grb.mem.container_live_bytes", G, "Live bytes held by container stores."),
    m("grb.mem.container_high_bytes", G, "High-water container-store bytes."),
    m("grb.mem.workspace_live_bytes", G, "Live bytes held by the workspace cache."),
    m("grb.mem.workspace_high_bytes", G, "High-water workspace-cache bytes."),
    // Per-Context rollups (label: ctx).
    m("grb.ctx.spans", C, "Spans recorded against each context."),
    m("grb.ctx.nanos", C, "Span wall time attributed to each context."),
    m("grb.ctx.mem_live_bytes", G, "Live bytes attributed to each context."),
    m("grb.ctx.mem_high_bytes", G, "High-water bytes attributed to each context."),
    // Decision provenance and the event ring.
    m("grb.decisions.by_reason", C, "Decision events per reason code."),
    m("grb.decisions.total", C, "Decision events recorded in total."),
    m("grb.events.total", C, "Span events ever recorded (ring may have dropped some)."),
    // Aggregate window rates.
    m("grb.rate.bytes", G, "Bytes moved per second over the sampler window."),
    // Telemetry-plane self-accounting.
    m("grb.sampler.samples", C, "Periodic snapshots taken by the sampler thread."),
    m("grb.sampler.scrapes", C, "Scrape requests served by the metrics endpoint."),
    m("grb.sampler.dump_writes", C, "GRB_METRICS_DUMP exposition files written."),
];

/// The full metric registry, in exposition order.
pub fn registry() -> &'static [MetricDesc] {
    REGISTRY
}

/// Looks up a family by dotted name.
pub fn find(name: &str) -> Option<&'static MetricDesc> {
    REGISTRY.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<_> = registry().iter().map(|d| d.name).collect();
        assert!(names.iter().all(|n| n.starts_with("grb.")), "{names:?}");
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry names");
    }

    #[test]
    fn every_name_resolves() {
        assert!(find("grb.kernel.calls").is_some());
        assert!(find("grb.pool.queue_depth").is_some());
        assert!(find("no.such.metric").is_none());
    }

    #[test]
    fn help_strings_are_exposition_safe() {
        for d in registry() {
            assert!(!d.help.contains('\n'), "{}: multi-line help", d.name);
            assert!(!d.help.is_empty(), "{}: empty help", d.name);
        }
    }
}
