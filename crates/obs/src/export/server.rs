//! The hand-rolled TCP scrape endpoint (`GRB_METRICS_ADDR=host:port`).
//!
//! One detached acceptor thread serves the Prometheus text exposition
//! (v0.0.4) over minimal HTTP/1.1: read the request head, answer any GET
//! with the current rendering, close. No keep-alive, no routing, no
//! external dependencies — a scraper or `grbtop` polls it, and `curl`
//! works for humans. Binding to port 0 is supported for tests:
//! [`bound_addr`] reports the kernel-assigned port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::OnceLock;
use std::time::Duration;

use crate::counters;

static BOUND: OnceLock<Option<SocketAddr>> = OnceLock::new();

/// The address the scrape endpoint actually bound (the kernel-assigned
/// port when `GRB_METRICS_ADDR` named port 0), or `None` when no endpoint
/// is serving.
pub fn bound_addr() -> Option<SocketAddr> {
    BOUND.get().copied().flatten()
}

/// Starts the endpoint if `GRB_METRICS_ADDR` is set (idempotent); returns
/// the bound address. A bind failure is reported to stderr and disables
/// the endpoint rather than aborting the host process.
pub fn start_if_requested() -> Option<SocketAddr> {
    *BOUND.get_or_init(|| {
        let addr = std::env::var("GRB_METRICS_ADDR").ok().filter(|a| !a.is_empty())?;
        match TcpListener::bind(&addr) {
            Ok(listener) => {
                let local = listener.local_addr().ok();
                let spawned = std::thread::Builder::new()
                    .name("grb-metrics".to_string())
                    .spawn(move || accept_loop(listener));
                match spawned {
                    Ok(_) => local,
                    Err(e) => {
                        eprintln!("[grb-obs] failed to spawn metrics endpoint thread: {e}");
                        None
                    }
                }
            }
            Err(e) => {
                eprintln!("[grb-obs] failed to bind GRB_METRICS_ADDR {addr}: {e}");
                None
            }
        }
    })
}

fn accept_loop(listener: TcpListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(s) => {
                // Serve inline: scrapes are rare (seconds apart) and the
                // rendering is milliseconds, so one thread suffices and
                // cannot be wedged open by a slow client thanks to the
                // read/write deadlines.
                let _ = serve_one(s);
            }
            Err(e) => {
                eprintln!("[grb-obs] metrics endpoint accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Reads the request head (bounded, deadline-guarded), then answers with
/// the exposition. Anything that is not recognizably HTTP still gets the
/// exposition — a scraper that just connects and reads is fine too.
fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut head = [0u8; 1024];
    let mut filled = 0;
    // Read until the blank line ending the request head, EOF, the buffer
    // cap, or the deadline — whichever comes first.
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if head[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Count before rendering so the served exposition includes the
    // in-flight scrape (the first scrape already shows 1).
    counters::sampler().scrapes.fetch_add(1, Ordering::Relaxed);
    let body = super::render();
    let header = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
