//! A minimal hand-written JSON writer (no serde — the build environment
//! is offline and the snapshot surface needs only objects, arrays,
//! strings, numbers, and booleans).
//!
//! ```
//! use graphblas_obs::JsonWriter;
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.key("name");
//! w.string("pagerank");
//! w.key("iters");
//! w.number(20);
//! w.key("ok");
//! w.boolean(true);
//! w.end_object();
//! assert_eq!(w.finish(), r#"{"name":"pagerank","iters":20,"ok":true}"#);
//! ```

/// Streaming JSON builder. Call `key` before each value inside an object;
/// commas and escaping are handled internally.
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once a first element was
    /// written (so the next one needs a comma separator).
    stack: Vec<bool>,
    /// Set between a `key` and its value, which must not emit a comma.
    after_key: bool,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn sep(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.buf.push(',');
            }
            *has_elems = true;
        }
    }

    pub fn begin_object(&mut self) {
        self.sep();
        self.buf.push('{');
        self.stack.push(false);
    }

    pub fn end_object(&mut self) {
        self.stack.pop();
        self.buf.push('}');
    }

    pub fn begin_array(&mut self) {
        self.sep();
        self.buf.push('[');
        self.stack.push(false);
    }

    pub fn end_array(&mut self) {
        self.stack.pop();
        self.buf.push(']');
    }

    pub fn key(&mut self, k: &str) {
        self.sep();
        self.write_escaped(k);
        self.buf.push(':');
        self.after_key = true;
    }

    pub fn string(&mut self, s: &str) {
        self.sep();
        self.write_escaped(s);
    }

    pub fn number(&mut self, n: u64) {
        self.sep();
        self.buf.push_str(&n.to_string());
    }

    pub fn number_i64(&mut self, n: i64) {
        self.sep();
        self.buf.push_str(&n.to_string());
    }

    /// Writes a float; non-finite values become `null` (JSON has no NaN).
    pub fn number_f64(&mut self, n: f64) {
        self.sep();
        if n.is_finite() {
            let formatted = format!("{n}");
            self.buf.push_str(&formatted);
        } else {
            self.buf.push_str("null");
        }
    }

    pub fn boolean(&mut self, b: bool) {
        self.sep();
        self.buf.push_str(if b { "true" } else { "false" });
    }

    pub fn null(&mut self) {
        self.sep();
        self.buf.push_str("null");
    }

    fn write_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let escaped = format!("\\u{:04x}", c as u32);
                    self.buf.push_str(&escaped);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("xs");
        w.begin_array();
        w.number(1);
        w.number(2);
        w.begin_object();
        w.key("deep");
        w.null();
        w.end_object();
        w.end_array();
        w.key("f");
        w.number_f64(1.5);
        w.key("neg");
        w.number_i64(-3);
        w.end_object();
        assert_eq!(w.finish(), r#"{"xs":[1,2,{"deep":null}],"f":1.5,"neg":-3}"#);
    }

    #[test]
    fn escaping() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nan_becomes_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.number_f64(f64::NAN);
        w.number_f64(2.0);
        w.end_array();
        assert_eq!(w.finish(), "[null,2]");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.end_array();
        w.key("b");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[],"b":{}}"#);
    }
}
