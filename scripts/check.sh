#!/usr/bin/env bash
# Repository gate: release build, full test suite, lint-clean clippy,
# the repo-specific grblint + grbsa static-analysis passes, and a bounded
# model-checker smoke run. Run from anywhere; operates on the workspace
# root.
#
#   --sanitize   additionally run the exec/check test suites under
#                ThreadSanitizer (requires a nightly toolchain with
#                rust-src; skipped with a notice otherwise).
set -euo pipefail
cd "$(dirname "$0")/.."

sanitize=0
for arg in "$@"; do
    case "$arg" in
        --sanitize) sanitize=1 ;;
        *) echo "check: unknown argument: $arg" >&2; exit 2 ;;
    esac
done

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Repo-specific lints (crates/check/src/lint.rs): relaxed orderings outside
# obs, unwrap/expect in core/sparse, fallible core APIs bypassing GrbResult,
# undocumented unsafe, kernel/operation entry points that record no
# telemetry span — and stale `grblint: allow(...)` waivers that no longer
# suppress anything. Fails the gate on any violation.
cargo run -q -p graphblas-check --bin grblint -- .

# Source-model static analysis (crates/check/src/sa): lock-order cycles
# across the workspace's Mutex/Condvar acquisition nesting (direct and
# through call summaries), condvar waits while holding a second lock, and
# the atomics-ordering audit — every `Ordering::Relaxed` site must declare
# a protocol from the table (`grbsa --protocols`) and must satisfy it, and
# release/acquire sites must pair up. Stale `grbsa:` annotations fail the
# gate like stale waivers do.
cargo run -q -p graphblas-check --bin grbsa -- .

# Both tools must also emit parseable machine-readable findings with the
# stable schema marker (the contract CI dashboards consume).
for tool in grblint grbsa; do
    out="$(cargo run -q -p graphblas-check --bin "$tool" -- --json . )"
    case "$out" in
        "{"*) ;;
        *) echo "check: $tool --json did not emit a JSON object" >&2; exit 1 ;;
    esac
    printf '%s' "$out" | grep -q '"schema": *"graphblas-check/findings/v1"' \
        || { echo "check: $tool --json lacks the findings/v1 schema marker" >&2; exit 1; }
done

# Concurrency model-checker smoke pass: every checked protocol (pool
# park/wake, channels, WaitGroup, pending drain, Fig. 1) explored across
# the tests' default budget of 500-1000 seeded schedules each — a few
# seconds total, plus the vector-clock race-detector regressions
# (model_race: seeded races must be found and must replay byte-exact).
# Set GRB_CHECK_SCHEDULES to raise (deep local run) or lower (constrained
# CI) the per-test schedule count without recompiling.
cargo test -q -p graphblas-check --test model_pool --test model_channels \
    --test model_pending --test model_fig1 --test model_transpose_cache \
    --test model_race --test model_dag_drain

# Optional ThreadSanitizer pass (EXPERIMENTS.md "Sanitizer runs"): the
# model checker explores interleavings of *model* primitives; TSan
# validates the real `std::sync`-backed ones. Needs nightly + rust-src.
if [ "$sanitize" = 1 ]; then
    host="$(rustc -vV | sed -n 's/^host: //p')"
    if rustup toolchain list 2>/dev/null | grep -q '^nightly' \
        && rustup component list --toolchain nightly 2>/dev/null \
            | grep -q '^rust-src (installed)'; then
        echo "check: running exec/check tests under ThreadSanitizer ($host)"
        RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -q -Zbuild-std --target "$host" \
            -p graphblas-exec -p graphblas-check
    else
        echo "check: --sanitize requested but no nightly toolchain with" \
             "rust-src is installed; skipping the TSan pass" >&2
    fi
fi

# Kernel benchmark baseline smoke: a bounded bench.sh run must succeed,
# pass the benchcmp regression gate against the committed smoke baseline
# (--compare; tolerant profile), and leave well-formed
# BENCH_kernels_smoke.json and BENCH_obs.json behind (medians +
# workspace/direction counters + per-kernel latency percentiles + memory
# gauges + per-reason decision aggregates). The run also exports its
# per-thread timeline via GRB_TRACE and its decision-provenance log via
# GRB_EXPLAIN; the tracecheck reader proves the Chrome trace is balanced,
# properly nested, multi-threaded, and covers the spgemm/mxv kernel
# phases, and the grbexplain reader proves the run actually recorded the
# paper's choice points: at least one direction pick, one workspace hit,
# one fused map flush, and — for the nonblocking op DAG — at least one
# cross-operation fusion and one forced drain.
trace_file="$(mktemp -t grb_trace.XXXXXX.json)"
explain_file="$(mktemp -t grb_explain.XXXXXX.json)"
metrics_file="$(mktemp -t grb_metrics.XXXXXX.prom)"
trap 'rm -f "$trace_file" "$explain_file" "$metrics_file"' EXIT
GRB_TRACE="$trace_file" GRB_EXPLAIN="$explain_file" GRB_METRICS_DUMP="$metrics_file" \
    scripts/bench.sh --smoke --compare
for f in BENCH_kernels_smoke.json BENCH_obs.json; do
    [ -s "$f" ] || { echo "check: $f missing or empty" >&2; exit 1; }
    case "$(head -c 1 "$f")" in
        "{") ;;
        *) echo "check: $f is not a JSON object" >&2; exit 1 ;;
    esac
done
for key in '"pagerank"' '"bfs"' '"spgemm"' '"fused_apply"' '"workspace"' '"direction"' \
           '"dispatch"' '"format"' '"static_hits"' '"bitmap_picks"' \
           '"median_secs"' '"kernels"' '"p50_ns"' '"p99_ns"' '"mem"' \
           '"container_high_bytes"' '"fused_pipeline"' \
           '"fused_pipeline_blocking"' '"mem_high"'; do
    grep -q "$key" BENCH_kernels_smoke.json \
        || { echo "check: BENCH_kernels_smoke.json lacks $key" >&2; exit 1; }
done
for key in '"kernels"' '"pending"' '"pool"' '"workspace"' '"direction"' '"mem"' \
           '"dispatch"' '"format"' '"static_hits"' '"dyn_fallbacks"' \
           '"contexts"' '"decisions"' '"decisions_total"' '"events_total"' \
           '"container_high_bytes"' '"p50_ns"' '"p99_ns"' '"fusion_hits"' \
           '"sampler"' '"queue_depth_max"' '"task_wait_ns"' \
           '"dag"' '"nodes_enqueued"' '"fused_chains"'; do
    grep -q "$key" BENCH_obs.json \
        || { echo "check: BENCH_obs.json lacks $key" >&2; exit 1; }
done
cargo run -q -p graphblas-check --bin tracecheck -- "$trace_file" --require-kernels
# The same smoke run dumped its final metrics exposition via
# GRB_METRICS_DUMP; the metricscheck reader re-validates the Prometheus
# text format and requires the telemetry-plane families: a per-kernel
# window rate, the pool scheduler metrics, and a memory gauge.
cargo run -q -p graphblas-check --bin metricscheck -- "$metrics_file" \
    --min-families 10 \
    --require grb_kernel_rate \
    --require grb_kernel_rolling_p99_ns \
    --require grb_pool_queue_depth \
    --require grb_pool_utilization \
    --require grb_pool_task_wait_ns \
    --require grb_pool_task_run_ns \
    --require grb_mem_container_high_bytes \
    --require grb_dag_nodes_enqueued \
    --require grb_dag_fused_chains
cargo run -q -p graphblas-check --bin grbexplain -- "$explain_file" \
    --assert reason=direction-pick,min=1 \
    --assert reason=workspace-hit,min=1 \
    --assert reason=fuse-flush,min=1 \
    --assert reason=dispatch-pick,min=1 \
    --assert reason=format-pick,min=1 \
    --assert reason=dag-fuse,min=1 \
    --assert reason=dag-force,min=1
