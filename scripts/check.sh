#!/usr/bin/env bash
# Repository gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
