#!/usr/bin/env bash
# Kernel benchmark baseline: builds the bench harness in release mode and
# regenerates, from one run, the baseline files at the repo root:
#
#   BENCH_kernels.json        pagerank / BFS / SpGEMM / fused-apply medians,
#                             workspace-reuse and push-pull direction
#                             counters, per-kernel latency percentiles
#                             (p50/p99), and memory high-water gauges
#   BENCH_kernels_smoke.json  the same shape from a --smoke run (smaller
#                             scale, fewer runs) — kept separate so
#                             comparisons are always like-for-like
#   BENCH_obs.json            the full telemetry snapshot of the same run
#
#   scripts/bench.sh           full baseline (rmat scale 13, 5 runs each)
#   scripts/bench.sh --smoke   bounded CI run (rmat scale 9, 3 runs each)
#
# --compare diffs the freshly written baseline against the committed one
# (the file's state in git HEAD) with the benchcmp gate: >25% median or
# p99 growth fails; with --smoke the tolerant profile is used instead
# (noise floors, wider ratios) since CI smoke runs are short and noisy.
#
# Set GRB_TRACE=<path> to additionally export the run's per-thread timeline
# as Chrome-trace JSON (open at ui.perfetto.dev), and GRB_EXPLAIN=<path>
# for the decision-provenance log (render with the grbexplain binary).
# GRB_METRICS_ADDR=<host:port> serves the live Prometheus scrape endpoint
# for the duration of the run (watch with grbtop); GRB_METRICS_DUMP=<path>
# writes the final exposition (validate with metricscheck).
#
# Regression protocol (EXPERIMENTS.md): commit the baseline alongside perf
# changes and diff median_secs against the parent commit's file.
set -euo pipefail
cd "$(dirname "$0")/.."

compare=0
smoke=0
args=()
for arg in "$@"; do
    case "$arg" in
        --compare) compare=1 ;;
        *)
            [ "$arg" = "--smoke" ] && smoke=1
            args+=("$arg")
            ;;
    esac
done

if [ "$smoke" = 1 ]; then
    baseline=BENCH_kernels_smoke.json
    cmp_flags=(--smoke-tolerant)
else
    baseline=BENCH_kernels.json
    cmp_flags=()
fi

old_file=""
if [ "$compare" = 1 ]; then
    old_file="$(mktemp -t grb_bench_old.XXXXXX.json)"
    trap 'rm -f "$old_file"' EXIT
    # Compare against the committed baseline, not the working-tree file the
    # run is about to overwrite.
    if ! git show "HEAD:$baseline" > "$old_file" 2>/dev/null; then
        if [ -s "$baseline" ]; then
            cp "$baseline" "$old_file"
        else
            echo "bench.sh: no committed $baseline to compare against; skipping gate" >&2
            old_file=""
        fi
    fi
fi

cargo run --release -q -p graphblas-bench --bin kernels -- ${args[@]+"${args[@]}"}

if [ "$compare" = 1 ] && [ -n "$old_file" ]; then
    cargo run --release -q -p graphblas-check --bin benchcmp -- \
        "$old_file" "$baseline" ${cmp_flags[@]+"${cmp_flags[@]}"}
fi
