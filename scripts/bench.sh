#!/usr/bin/env bash
# Kernel benchmark baseline: builds the bench harness in release mode and
# regenerates, from one run, both baseline files at the repo root:
#
#   BENCH_kernels.json  pagerank / BFS / SpGEMM medians, workspace-reuse and
#                       push-pull direction counters, per-kernel latency
#                       percentiles (p50/p99), and memory high-water gauges
#   BENCH_obs.json      the full telemetry snapshot of the same run
#
#   scripts/bench.sh           full baseline (rmat scale 13, 5 runs each)
#   scripts/bench.sh --smoke   bounded CI run (rmat scale 9, 3 runs each)
#
# Set GRB_TRACE=<path> to additionally export the run's per-thread timeline
# as Chrome-trace JSON (open at ui.perfetto.dev).
#
# Regression protocol (EXPERIMENTS.md): commit the baseline alongside perf
# changes and diff median_secs against the parent commit's file.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p graphblas-bench --bin kernels -- "$@"
