#!/usr/bin/env bash
# Kernel benchmark baseline: builds the bench harness in release mode and
# regenerates BENCH_kernels.json (pagerank / BFS / SpGEMM medians plus the
# workspace-reuse and push-pull direction counter blocks) at the repo root.
#
#   scripts/bench.sh           full baseline (rmat scale 13, 5 runs each)
#   scripts/bench.sh --smoke   bounded CI run (rmat scale 9, 3 runs each)
#
# Regression protocol (EXPERIMENTS.md): commit the baseline alongside perf
# changes and diff median_secs against the parent commit's file.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p graphblas-bench --bin kernels -- "$@"
